package resilience

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// RetryConfig configures the transient-fault retry budget.
type RetryConfig struct {
	// Ratio is the budget earned per fault-free query: with Ratio 0.05,
	// retries are capped at 5% of successful traffic — the gRPC-style
	// guarantee that a fault storm cannot amplify offered load through
	// retries. 0 disables retrying.
	Ratio float64
	// Burst caps the accumulated budget (default 10 tokens; the bucket
	// starts full so isolated early faults may retry).
	Burst float64
	// BaseBackoff is the first retry's backoff before jitter (default
	// 500µs); each further attempt doubles it.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 8ms).
	MaxBackoff time.Duration
}

// Validate rejects unusable configurations.
func (c RetryConfig) Validate() error {
	if c.Ratio < 0 || c.Ratio > 1 || c.Ratio != c.Ratio {
		return fmt.Errorf("resilience: Retry.Ratio %v outside [0,1]", c.Ratio)
	}
	if c.Burst < 0 {
		return fmt.Errorf("resilience: negative Retry.Burst %v", c.Burst)
	}
	if c.BaseBackoff < 0 || c.MaxBackoff < 0 {
		return fmt.Errorf("resilience: negative Retry backoff")
	}
	return nil
}

// RetryBudget is a token bucket bounding transient-fault retries across
// a whole engine: each fault-free query deposits Ratio tokens, each
// retry withdraws one, so retry traffic can never exceed Ratio of the
// successful traffic no matter how hard a fault storm blows. Backoffs
// are exponential with deterministic multiplicative jitter (a counter-
// hashed draw in [0.5, 1.5)), de-synchronizing retries without any
// global randomness. Safe for concurrent use.
type RetryBudget struct {
	cfg RetryConfig

	mu     sync.Mutex
	tokens float64
	draws  uint64 // jitter counter
}

// NewRetryBudget builds a budget; nil is returned for a disabled config
// (Ratio 0), and a nil *RetryBudget never allows a retry.
func NewRetryBudget(cfg RetryConfig) *RetryBudget {
	if cfg.Ratio <= 0 {
		return nil
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 10
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 500 * time.Microsecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 8 * time.Millisecond
	}
	return &RetryBudget{cfg: cfg, tokens: cfg.Burst}
}

// OnSuccess deposits the per-success earn (capped at Burst).
func (r *RetryBudget) OnSuccess() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tokens += r.cfg.Ratio
	if r.tokens > r.cfg.Burst {
		r.tokens = r.cfg.Burst
	}
	r.mu.Unlock()
}

// Allow withdraws one retry token, reporting whether the retry may run.
func (r *RetryBudget) Allow() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tokens < 1 {
		return false
	}
	r.tokens--
	return true
}

// Tokens returns the current balance.
func (r *RetryBudget) Tokens() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tokens
}

// Backoff returns attempt's jittered backoff: BaseBackoff·2^attempt
// capped at MaxBackoff, scaled by a deterministic per-draw factor in
// [0.5, 1.5).
func (r *RetryBudget) Backoff(attempt int) time.Duration {
	if r == nil {
		return 0
	}
	d := r.cfg.BaseBackoff
	for i := 0; i < attempt && d < r.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	r.draws++
	h := splitmix(r.draws)
	r.mu.Unlock()
	// Uniform jitter factor in [0.5, 1.5).
	f := 0.5 + float64(h>>11)/(1<<53)
	return time.Duration(float64(d) * f)
}

// Sleep blocks for d or until ctx ends, returning the context's cause
// in the latter case — backoffs must never outlive the query deadline.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// splitmix is the SplitMix64 mixer (the same counter-based deterministic
// randomness internal/fault uses for its fault maps).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
