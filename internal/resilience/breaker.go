package resilience

import (
	"fmt"
	"sync"
	"time"
)

// BreakerConfig configures one circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips
	// a closed breaker open. 0 disables the breaker.
	FailureThreshold int
	// CoolDown is how long an open breaker refuses traffic before
	// half-opening to probe (default 1s).
	CoolDown time.Duration
	// HalfOpenProbes is both the number of probe requests a half-open
	// breaker admits concurrently and the number of consecutive probe
	// successes required to close again (default 1).
	HalfOpenProbes int
	// Clock overrides the time source (tests inject a fake clock;
	// default time.Now).
	Clock func() time.Time
}

// Validate rejects unusable configurations.
func (c BreakerConfig) Validate() error {
	if c.FailureThreshold < 0 {
		return fmt.Errorf("resilience: negative Breaker.FailureThreshold %d", c.FailureThreshold)
	}
	if c.CoolDown < 0 {
		return fmt.Errorf("resilience: negative Breaker.CoolDown %s", c.CoolDown)
	}
	if c.HalfOpenProbes < 0 {
		return fmt.Errorf("resilience: negative Breaker.HalfOpenProbes %d", c.HalfOpenProbes)
	}
	return nil
}

// State is a breaker's position in the closed → open → half-open cycle.
type State int32

// The breaker states.
const (
	StateClosed State = iota
	StateOpen
	StateHalfOpen
)

// String renders the state for metrics and span annotations.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Breaker is a circuit breaker: closed it passes traffic while counting
// consecutive failures; FailureThreshold of them trip it open; open it
// refuses everything (ErrCircuitOpen) until CoolDown elapses; then it
// half-opens, admitting up to HalfOpenProbes concurrent probes —
// HalfOpenProbes consecutive probe successes close it, any probe failure
// re-opens it and restarts the cool-down. In the serving engine one
// breaker guards each shard's PIM path, with failure defined by the
// fault/recovery meters (internal/fault): a refusal reroutes the shard
// to the exact host scan, never to an error. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu        sync.Mutex
	state     State
	gen       uint64 // bumped on every transition; stale outcomes are dropped
	failures  int    // consecutive failures while closed
	successes int    // consecutive probe successes while half-open
	probes    int    // in-flight half-open probes
	openedAt  time.Time
	trips     int64 // cumulative closed/half-open → open transitions
}

// NewBreaker builds a breaker; nil is returned for a disabled config
// (FailureThreshold 0), and a nil *Breaker admits everything.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		return nil
	}
	if cfg.CoolDown <= 0 {
		cfg.CoolDown = time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	return &Breaker{cfg: cfg, now: now}
}

// Allow asks to pass traffic. On success it returns a done callback that
// MUST be invoked exactly once with the request's outcome; on refusal it
// returns an error matching ErrCircuitOpen. Outcomes from before a state
// transition (a trip mid-request, a re-open during a stale probe) are
// discarded rather than corrupting the new state's counters.
func (b *Breaker) Allow() (done func(ok bool), err error) {
	if b == nil {
		return func(bool) {}, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen {
		if wait := b.cfg.CoolDown - b.now().Sub(b.openedAt); wait > 0 {
			return nil, fmt.Errorf("%w (cooling down %s more)", ErrCircuitOpen, wait.Round(time.Millisecond))
		}
		// Cool-down elapsed: half-open and treat this caller as the
		// first probe.
		b.transition(StateHalfOpen)
	}
	if b.state == StateHalfOpen {
		if b.probes >= b.cfg.HalfOpenProbes {
			return nil, fmt.Errorf("%w (half-open, %d probes in flight)", ErrCircuitOpen, b.probes)
		}
		b.probes++
	}
	gen := b.gen
	return func(ok bool) { b.record(gen, ok) }, nil
}

// record lands one outcome from the generation it was admitted in.
func (b *Breaker) record(gen uint64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if gen != b.gen {
		return // admitted before a transition; its era is over
	}
	switch b.state {
	case StateClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case StateHalfOpen:
		b.probes--
		if !ok {
			b.trip()
			return
		}
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.transition(StateClosed)
		}
	}
}

// trip opens the breaker and starts the cool-down clock.
func (b *Breaker) trip() {
	b.transition(StateOpen)
	b.openedAt = b.now()
	b.trips++
}

// transition moves to a new state, resetting its counters and
// invalidating outcomes admitted under the old one.
func (b *Breaker) transition(s State) {
	b.state = s
	b.gen++
	b.failures = 0
	b.successes = 0
	b.probes = 0
}

// State returns the current state (StateClosed for a nil breaker),
// surfacing an elapsed cool-down as StateHalfOpen — the state the next
// Allow would act in.
func (b *Breaker) State() State {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.now().Sub(b.openedAt) >= b.cfg.CoolDown {
		return StateHalfOpen
	}
	return b.state
}

// Trips returns the cumulative number of times the breaker opened.
func (b *Breaker) Trips() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
