package resilience

import (
	"testing"
	"time"
)

func TestBreakerSet(t *testing.T) {
	t.Parallel()
	clk := newFakeClock()
	s := NewBreakerSet(3, BreakerConfig{FailureThreshold: 2, CoolDown: time.Hour, Clock: clk.Now})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// Breakers are independent: tripping #1 leaves the others closed.
	for i := 0; i < 2; i++ {
		done, err := s.Get(1).Allow()
		if err != nil {
			t.Fatalf("closed breaker refused: %v", err)
		}
		done(false)
	}
	want := []State{StateClosed, StateOpen, StateClosed}
	got := s.States()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("States() = %v, want %v", got, want)
		}
	}
	if s.OpenCount() != 1 {
		t.Fatalf("OpenCount = %d, want 1", s.OpenCount())
	}
	if s.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", s.Trips())
	}
	if s.Get(0) == s.Get(2) {
		t.Fatal("distinct indices share a breaker")
	}
}

func TestBreakerSetEmpty(t *testing.T) {
	t.Parallel()
	for _, n := range []int{0, -5} {
		s := NewBreakerSet(n, BreakerConfig{})
		if s.Len() != 0 || len(s.States()) != 0 || s.OpenCount() != 0 || s.Trips() != 0 {
			t.Fatalf("empty set (n=%d) not inert", n)
		}
	}
}
