package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRetryBudgetBoundsRetries: the bucket starts at Burst, drains one
// token per retry, refuses when empty, and refills at Ratio per success
// — so sustained retries cannot exceed Ratio × successes.
func TestRetryBudgetBoundsRetries(t *testing.T) {
	t.Parallel()
	r := NewRetryBudget(RetryConfig{Ratio: 0.5, Burst: 2})
	if !r.Allow() || !r.Allow() {
		t.Fatal("full bucket must allow Burst retries")
	}
	if r.Allow() {
		t.Fatal("empty bucket allowed a retry")
	}
	r.OnSuccess() // +0.5: still under one token
	if r.Allow() {
		t.Fatalf("allowed at %.2f tokens", r.Tokens())
	}
	r.OnSuccess() // +0.5: exactly one token
	if !r.Allow() {
		t.Fatalf("refused at %.2f tokens", r.Tokens())
	}
	// Refill never exceeds Burst.
	for i := 0; i < 100; i++ {
		r.OnSuccess()
	}
	if got := r.Tokens(); got != 2 {
		t.Fatalf("tokens after heavy refill = %v, want Burst 2", got)
	}
}

// TestRetryBackoffGrowsAndJitters: backoff doubles per attempt up to the
// cap, and every draw stays inside the [0.5, 1.5) jitter envelope.
func TestRetryBackoffGrowsAndJitters(t *testing.T) {
	t.Parallel()
	base, max := time.Millisecond, 4*time.Millisecond
	r := NewRetryBudget(RetryConfig{Ratio: 0.1, BaseBackoff: base, MaxBackoff: max})
	for attempt := 0; attempt < 6; attempt++ {
		nominal := base << attempt
		if nominal > max {
			nominal = max
		}
		for i := 0; i < 32; i++ {
			d := r.Backoff(attempt)
			lo := time.Duration(float64(nominal) * 0.5)
			hi := time.Duration(float64(nominal) * 1.5)
			if d < lo || d >= hi {
				t.Fatalf("attempt %d backoff %s outside [%s, %s)", attempt, d, lo, hi)
			}
		}
	}
}

// TestRetryDisabledAndNil: Ratio 0 yields a nil budget that never
// allows and backs off zero.
func TestRetryDisabledAndNil(t *testing.T) {
	t.Parallel()
	r := NewRetryBudget(RetryConfig{})
	if r != nil {
		t.Fatal("Ratio 0 must yield a nil budget")
	}
	r.OnSuccess()
	if r.Allow() {
		t.Fatal("nil budget allowed a retry")
	}
	if d := r.Backoff(3); d != 0 {
		t.Fatalf("nil budget backoff = %s, want 0", d)
	}
}

// TestSleepHonorsContext: Sleep returns nil after the duration and the
// context's cause when canceled first.
func TestSleepHonorsContext(t *testing.T) {
	t.Parallel()
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("Sleep returned %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Sleep returned %v, want context.Canceled", err)
	}
	if err := Sleep(ctx, 0); err != nil {
		t.Fatalf("zero-duration Sleep must not consult ctx, got %v", err)
	}
}

// TestConfigValidate covers the rejection paths.
func TestConfigValidate(t *testing.T) {
	t.Parallel()
	bad := []Config{
		{MaxConcurrent: -1},
		{MaxQueue: -2},
		{MaxQueue: 3}, // queue without a concurrency cap
		{ShedFactor: -0.5},
		{MinShedSamples: -1},
		{ShedFactor: 1, ShedBuckets: []float64{2, 1}},
		{Breaker: BreakerConfig{FailureThreshold: -1}},
		{Breaker: BreakerConfig{FailureThreshold: 1, CoolDown: -time.Second}},
		{Retry: RetryConfig{Ratio: 2}},
		{Retry: RetryConfig{Ratio: 0.1, Burst: -1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, c)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if err := Default(8).Validate(); err != nil {
		t.Errorf("Default(8) rejected: %v", err)
	}
}
