package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestShedderWarmupAndTrigger: no shedding before minSamples; after
// warm-up, a query whose remaining deadline is under factor×p95 is shed
// with the typed sentinel while a roomy deadline passes.
func TestShedderWarmupAndTrigger(t *testing.T) {
	t.Parallel()
	s := NewShedder(1, 4, nil)

	tight, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if err := s.Check(tight); err != nil {
		t.Fatalf("cold shedder shed during warm-up: %v", err)
	}
	for i := 0; i < 4; i++ {
		s.Observe(100 * time.Millisecond)
	}
	p95, n := s.P95()
	if n != 4 || p95 <= 0 {
		t.Fatalf("P95 = %s over %d samples, want positive over 4", p95, n)
	}

	tight2, cancel2 := context.WithTimeout(context.Background(), p95/4)
	defer cancel2()
	if err := s.Check(tight2); !errors.Is(err, ErrShedDeadline) {
		t.Fatalf("tight deadline got %v, want ErrShedDeadline", err)
	}
	roomy, cancel3 := context.WithTimeout(context.Background(), 10*p95)
	defer cancel3()
	if err := s.Check(roomy); err != nil {
		t.Fatalf("roomy deadline shed: %v", err)
	}
	// No deadline at all: never shed.
	if err := s.Check(context.Background()); err != nil {
		t.Fatalf("deadline-free query shed: %v", err)
	}
}

// TestShedderFactorScalesThreshold: a larger factor sheds earlier.
func TestShedderFactorScalesThreshold(t *testing.T) {
	t.Parallel()
	lax := NewShedder(0.5, 1, nil)
	strict := NewShedder(4, 1, nil)
	for _, s := range []*Shedder{lax, strict} {
		for i := 0; i < 8; i++ {
			s.Observe(20 * time.Millisecond)
		}
	}
	p95, _ := lax.P95()
	// A deadline between 0.5×p95 and 4×p95 splits the two.
	mid, cancel := context.WithTimeout(context.Background(), 2*p95)
	defer cancel()
	if err := lax.Check(mid); err != nil {
		t.Fatalf("factor 0.5 shed a 2×p95 deadline: %v", err)
	}
	if err := strict.Check(mid); !errors.Is(err, ErrShedDeadline) {
		t.Fatalf("factor 4 passed a 2×p95 deadline: %v", err)
	}
}

// TestShedderDisabledAndNil: factor ≤ 0 yields a nil shedder whose
// methods are safe no-ops.
func TestShedderDisabledAndNil(t *testing.T) {
	t.Parallel()
	s := NewShedder(0, 1, nil)
	if s != nil {
		t.Fatal("factor 0 must yield a nil shedder")
	}
	s.Observe(time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if err := s.Check(ctx); err != nil {
		t.Fatalf("nil shedder shed: %v", err)
	}
	if p95, n := s.P95(); p95 != 0 || n != 0 {
		t.Fatalf("nil shedder P95 = %s/%d, want 0/0", p95, n)
	}
}
