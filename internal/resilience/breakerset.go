package resilience

// BreakerSet is a fixed-size indexed family of circuit breakers built
// from one shared config — one breaker per backend (PIM node, shard
// host, upstream). It adds the aggregate views a placement layer wants
// when deciding how degraded a fleet is, without each caller
// hand-rolling the same loops.
type BreakerSet struct {
	breakers []*Breaker
}

// NewBreakerSet builds n breakers from cfg. n < 0 is treated as 0.
func NewBreakerSet(n int, cfg BreakerConfig) *BreakerSet {
	if n < 0 {
		n = 0
	}
	s := &BreakerSet{breakers: make([]*Breaker, n)}
	for i := range s.breakers {
		s.breakers[i] = NewBreaker(cfg)
	}
	return s
}

// Len returns the number of breakers in the set.
func (s *BreakerSet) Len() int { return len(s.breakers) }

// Get returns breaker i; callers index by backend id.
func (s *BreakerSet) Get(i int) *Breaker { return s.breakers[i] }

// States returns every breaker's current state, indexed by backend.
func (s *BreakerSet) States() []State {
	out := make([]State, len(s.breakers))
	for i, b := range s.breakers {
		out[i] = b.State()
	}
	return out
}

// OpenCount returns how many breakers are currently open.
func (s *BreakerSet) OpenCount() int {
	n := 0
	for _, b := range s.breakers {
		if b.State() == StateOpen {
			n++
		}
	}
	return n
}

// Trips returns the total trip count across the set.
func (s *BreakerSet) Trips() int64 {
	var n int64
	for _, b := range s.breakers {
		n += b.Trips()
	}
	return n
}
