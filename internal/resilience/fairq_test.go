package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// enqueueWaiter parks one Acquire in the queue and returns channels to
// observe the grant. It only returns once the waiter is visibly queued,
// so tests control enqueue order deterministically.
func enqueueWaiter(t *testing.T, f *FairQueue, tenant string, grants chan<- string) {
	t.Helper()
	before := f.Queued(tenant)
	go func() {
		release, err := f.Acquire(context.Background(), tenant)
		if err != nil {
			panic(fmt.Sprintf("queued acquire(%s): %v", tenant, err))
		}
		grants <- tenant
		release()
	}()
	for i := 0; f.Queued(tenant) != before+1; i++ {
		if i > 10000 {
			t.Fatalf("waiter for %q never queued", tenant)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// With one slot held, a hot tenant queueing 10 requests and a cold
// tenant queueing 2 afterwards, equal weights must interleave the cold
// tenant's grants near the front instead of FIFO-starving it behind the
// hot backlog.
func TestFairQueueInterleavesBackloggedTenants(t *testing.T) {
	t.Parallel()
	f := NewFairQueue(1, 16)
	hold, err := f.Acquire(context.Background(), "hot")
	if err != nil {
		t.Fatal(err)
	}
	grants := make(chan string, 16)
	for i := 0; i < 10; i++ {
		enqueueWaiter(t, f, "hot", grants)
	}
	for i := 0; i < 2; i++ {
		enqueueWaiter(t, f, "cold", grants)
	}
	hold() // cascade: each grant releases and wakes the next waiter
	var order []string
	for i := 0; i < 12; i++ {
		order = append(order, <-grants)
	}
	// SFQ start tags: hot requests chain 1, 2, 3, … while cold's two
	// requests tag at the current vtime and vtime+1 — so both cold
	// grants must land within the first four.
	cold := 0
	for _, g := range order[:4] {
		if g == "cold" {
			cold++
		}
	}
	if cold != 2 {
		t.Fatalf("cold grants in first 4 = %d, want 2 (order %v)", cold, order)
	}
}

// Weighted tenants must be granted in proportion to their weights while
// both stay backlogged: weight 3 vs 1 → 3 of each 4 early grants.
func TestFairQueueWeightedShare(t *testing.T) {
	t.Parallel()
	f := NewFairQueue(1, 32)
	if err := f.SetWeight("big", 3); err != nil {
		t.Fatal(err)
	}
	if err := f.SetWeight("small", 1); err != nil {
		t.Fatal(err)
	}
	hold, err := f.Acquire(context.Background(), "big")
	if err != nil {
		t.Fatal(err)
	}
	grants := make(chan string, 32)
	for i := 0; i < 12; i++ {
		enqueueWaiter(t, f, "big", grants)
	}
	for i := 0; i < 4; i++ {
		enqueueWaiter(t, f, "small", grants)
	}
	hold()
	counts := map[string]int{}
	for i := 0; i < 16; i++ {
		g := <-grants
		counts[g]++
		// While both tenants are backlogged (first 16 = all grants here,
		// small exhausts at its 4th), big must never lead by more than
		// its 3:1 share plus one in-flight grant.
		if counts["big"] > 3*(counts["small"]+1)+1 {
			t.Fatalf("big ran ahead of its 3:1 share: big=%d small=%d", counts["big"], counts["small"])
		}
	}
}

// SetWeight must reject non-positive and NaN weights.
func TestFairQueueSetWeightValidation(t *testing.T) {
	t.Parallel()
	f := NewFairQueue(1, 1)
	for _, w := range []float64{0, -1, nan()} {
		if err := f.SetWeight("x", w); err == nil {
			t.Fatalf("SetWeight(%v) accepted", w)
		}
	}
}

func nan() float64 { v := 0.0; return v / v }

// A tenant exceeding its bounded wait queue is rejected with the typed
// ErrOverloaded — while another tenant, whose own queue is empty, still
// has its full queue budget (the bound is per-tenant isolation, not a
// global FIFO cap).
func TestFairQueueBoundedQueueRejects(t *testing.T) {
	t.Parallel()
	f := NewFairQueue(1, 1)
	hold, err := f.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	grants := make(chan string, 4)
	enqueueWaiter(t, f, "a", grants)
	if _, err := f.Acquire(context.Background(), "a"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue acquire err = %v, want ErrOverloaded", err)
	}
	// Tenant b's queue is empty, so b queues instead of being rejected.
	enqueueWaiter(t, f, "b", grants)
	if _, err := f.Acquire(context.Background(), "b"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("tenant b second waiter err = %v, want ErrOverloaded", err)
	}
	hold() // cascade: both queued waiters drain
	got := map[string]int{}
	for i := 0; i < 2; i++ {
		got[<-grants]++
	}
	if got["a"] != 1 || got["b"] != 1 {
		t.Fatalf("drained grants = %v, want one per tenant", got)
	}
}

// A queued waiter whose context ends leaves the queue; the slot is
// never leaked and later grants proceed.
func TestFairQueueCancelWhileQueued(t *testing.T) {
	t.Parallel()
	f := NewFairQueue(1, 4)
	hold, err := f.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := f.Acquire(ctx, "b")
		errc <- err
	}()
	for i := 0; f.Queued("b") != 1; i++ {
		if i > 10000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v", err)
	}
	if got := f.QueuedTotal(); got != 0 {
		t.Fatalf("queue depth after cancel = %d", got)
	}
	hold()
	release, err := f.Acquire(context.Background(), "c")
	if err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
	release()
	if got := f.InFlight(); got != 0 {
		t.Fatalf("in-flight after release = %d, want 0 (slot leak)", got)
	}
}

// Long-run proportionality under real concurrency: five tenants stay
// backlogged against 2 slots; grant counts normalized by weight must be
// near-uniform — Jain's fairness index over x_i = grants_i / weight_i
// at least 0.9 (it lands near 1.0; 0.9 is the serving-layer bar).
func TestFairQueueProportionalShareJain(t *testing.T) {
	t.Parallel()
	f := NewFairQueue(2, 8)
	weights := map[string]float64{"a": 1, "b": 1, "c": 2, "d": 4, "e": 4}
	for name, w := range weights {
		if err := f.SetWeight(name, w); err != nil {
			t.Fatal(err)
		}
	}
	// Each tenant runs several workers so its queue never drains: a
	// work-conserving SFQ only guarantees proportional shares while every
	// tenant stays backlogged (a momentarily empty queue lets vtime jump).
	// The start barrier keeps one early goroutine from burning through the
	// whole grant budget before the others are even scheduled.
	const workersPerTenant = 4
	const totalGrants = 1500
	counts := make(map[string]*atomic.Int64)
	for name := range weights {
		counts[name] = &atomic.Int64{}
	}
	var total atomic.Int64
	start := make(chan struct{})
	var ready, wg sync.WaitGroup
	for name := range weights {
		for w := 0; w < workersPerTenant; w++ {
			ready.Add(1)
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				ready.Done()
				<-start
				for total.Load() < totalGrants {
					release, err := f.Acquire(context.Background(), name)
					if err != nil {
						panic(err)
					}
					// Hold the slot briefly: with zero service time the
					// releasing goroutine re-takes the mutex and the fast
					// path before anyone queues, and no backlog ever forms.
					time.Sleep(20 * time.Microsecond)
					counts[name].Add(1)
					total.Add(1)
					release()
				}
			}(name)
		}
	}
	ready.Wait()
	close(start)
	wg.Wait()
	var xs []float64
	for name, w := range weights {
		xs = append(xs, float64(counts[name].Load())/w)
	}
	j := jain(xs)
	if j < 0.9 {
		t.Fatalf("weight-normalized grant Jain index = %.3f < 0.9 (counts %v)", j, render(counts))
	}
}

func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

func render(counts map[string]*atomic.Int64) map[string]int64 {
	out := make(map[string]int64, len(counts))
	for k, v := range counts {
		out[k] = v.Load()
	}
	return out
}

// Hammer: concurrent Acquire/Release/cancel across tenants must stay
// race-clean and leak no slots.
func TestFairQueueHammer(t *testing.T) {
	t.Parallel()
	f := NewFairQueue(3, 4)
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%4)
			for i := 0; i < 200; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if i%3 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*100*time.Microsecond)
				}
				release, err := f.Acquire(ctx, tenant)
				switch {
				case err == nil:
					release()
				case errors.Is(err, ErrOverloaded), errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				default:
					panic(fmt.Sprintf("untyped acquire error: %v", err))
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	if got := f.InFlight(); got != 0 {
		t.Fatalf("in-flight after hammer = %d, want 0", got)
	}
	if got := f.QueuedTotal(); got != 0 {
		t.Fatalf("queued after hammer = %d, want 0", got)
	}
}

// Token bucket over a fake clock: deterministic earn/spend/refill.
func TestTokenBucketDeterministic(t *testing.T) {
	t.Parallel()
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewTokenBucket(10, 3, clock) // 10 tokens/s, burst 3
	for i := 0; i < 3; i++ {
		if wait, err := b.Take(); err != nil || wait != 0 {
			t.Fatalf("burst take %d: wait=%s err=%v", i, wait, err)
		}
	}
	wait, err := b.Take()
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("empty bucket err = %v, want ErrQuotaExceeded", err)
	}
	if wait != 100*time.Millisecond {
		t.Fatalf("empty bucket wait = %s, want 100ms", wait)
	}
	now = now.Add(150 * time.Millisecond) // earns 1.5 tokens
	if _, err := b.Take(); err != nil {
		t.Fatalf("take after refill: %v", err)
	}
	if _, err := b.Take(); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("half-token take err = %v, want ErrQuotaExceeded", err)
	}
	now = now.Add(10 * time.Second) // refill clamps at burst
	if got := b.Tokens(); got != 3 {
		t.Fatalf("tokens after long idle = %v, want burst 3", got)
	}
}

// Unlimited (nil) bucket admits forever.
func TestTokenBucketUnlimited(t *testing.T) {
	t.Parallel()
	var b *TokenBucket
	if b != NewTokenBucket(0, 5, nil) {
		t.Fatal("rate 0 must return the nil unlimited bucket")
	}
	for i := 0; i < 1000; i++ {
		if _, err := b.Take(); err != nil {
			t.Fatal(err)
		}
	}
	if b.Tokens() != 0 {
		t.Fatal("nil bucket Tokens() must be 0")
	}
}
