package resilience

import (
	"context"
	"fmt"
	"time"

	"pimmine/internal/obs"
)

// Shedder is the deadline-aware load shedder: it keeps a latency
// histogram of completed-query service times (the same fixed-bucket
// obs.Histogram the metrics endpoint exposes) and, before any shard work
// is dispatched, compares a query's remaining deadline against the
// histogram's interpolated p95. A query whose remaining budget is below
// factor × p95 cannot realistically finish; shedding it up front returns
// a typed error in microseconds and spends none of the PIM transfer
// budget (Eq. 13's Tcost) on doomed work. Safe for concurrent use.
type Shedder struct {
	hist       *obs.Histogram
	factor     float64
	minSamples int64
}

// NewShedder builds a shedder; nil is returned for a disabled factor
// (≤ 0), and a nil *Shedder never sheds. buckets defaults to
// obs.DefLatencyBuckets; minSamples to 32.
func NewShedder(factor float64, minSamples int, buckets []float64) *Shedder {
	if factor <= 0 {
		return nil
	}
	if len(buckets) == 0 {
		buckets = obs.DefLatencyBuckets()
	}
	if minSamples <= 0 {
		minSamples = 32
	}
	return &Shedder{
		hist:       obs.NewHistogram(buckets),
		factor:     factor,
		minSamples: int64(minSamples),
	}
}

// Observe records one successful query's service time. Only completed
// queries feed the estimate — shed and rejected queries never ran, and
// folding timeouts in would make the estimator chase its own ceiling.
func (s *Shedder) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.hist.Observe(d.Seconds())
}

// Check sheds a doomed query: with a deadline on ctx and enough samples
// observed, it returns an error matching ErrShedDeadline when the
// remaining deadline is below factor × p95 service time. Queries without
// a deadline, and all queries during warm-up, pass.
func (s *Shedder) Check(ctx context.Context) error {
	if s == nil {
		return nil
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	if s.hist.Count() < s.minSamples {
		return nil
	}
	p95 := s.hist.Quantile(0.95)
	need := time.Duration(s.factor * p95 * float64(time.Second))
	if remaining := time.Until(deadline); remaining < need {
		return fmt.Errorf("%w (%s remaining < %.2g×p95 %s)",
			ErrShedDeadline, remaining.Round(time.Microsecond), s.factor,
			time.Duration(p95*float64(time.Second)).Round(time.Microsecond))
	}
	return nil
}

// P95 returns the current p95 service-time estimate and the sample
// count behind it (0, 0 for a nil or empty shedder).
func (s *Shedder) P95() (time.Duration, int64) {
	if s == nil {
		return 0, 0
	}
	n := s.hist.Count()
	if n == 0 {
		return 0, 0
	}
	return time.Duration(s.hist.Quantile(0.95) * float64(time.Second)), n
}
