package resilience

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerLifecycle walks the full closed → open → half-open → closed
// cycle, including a failed probe that re-opens.
func TestBreakerLifecycle(t *testing.T) {
	t.Parallel()
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, CoolDown: time.Second, HalfOpenProbes: 2, Clock: clk.Now})

	// Closed: successes reset the failure streak.
	for _, ok := range []bool{false, false, true, false, false} {
		done, err := b.Allow()
		if err != nil {
			t.Fatalf("closed breaker refused: %v", err)
		}
		done(ok)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after interrupted streak = %v, want closed", got)
	}
	// A third consecutive failure trips it.
	done, _ := b.Allow()
	done(false)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// Open: refuses with the typed sentinel until the cool-down elapses.
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker returned %v, want ErrCircuitOpen", err)
	}
	clk.Advance(999 * time.Millisecond)
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("still cooling down, got %v, want ErrCircuitOpen", err)
	}
	clk.Advance(2 * time.Millisecond)

	// Half-open: admits HalfOpenProbes concurrent probes, no more.
	p1, err := b.Allow()
	if err != nil {
		t.Fatalf("first probe refused: %v", err)
	}
	p2, err := b.Allow()
	if err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("third concurrent probe got %v, want ErrCircuitOpen", err)
	}
	// A failed probe re-opens and restarts the cool-down.
	p1(false)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The stale second probe's outcome must not corrupt the new era.
	p2(true)
	if got := b.State(); got != StateOpen {
		t.Fatalf("stale probe outcome changed state to %v", got)
	}

	// Re-probe after another cool-down; enough successes close it.
	clk.Advance(time.Second)
	for i := 0; i < 2; i++ {
		done, err := b.Allow()
		if err != nil {
			t.Fatalf("probe %d refused: %v", i, err)
		}
		done(true)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after probe successes = %v, want closed", got)
	}
	if got := b.Trips(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
}

// TestBreakerNilAdmitsEverything: the nil breaker (disabled config) is a
// pass-through.
func TestBreakerNilAdmitsEverything(t *testing.T) {
	t.Parallel()
	var b *Breaker
	if b != NewBreaker(BreakerConfig{}) {
		t.Fatal("disabled config must yield a nil breaker")
	}
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("nil breaker refused: %v", err)
	}
	done(false)
	if got := b.State(); got != StateClosed {
		t.Fatalf("nil breaker state = %v, want closed", got)
	}
}

// TestBreakerPropertyRandomSequences drives breakers through random
// fault/recovery sequences and checks the state-machine invariants the
// serving layer depends on:
//
//  1. an open breaker never admits traffic before its cool-down elapses;
//  2. once the cool-down has elapsed, the next Allow is always admitted
//     (the breaker always re-probes — it can never wedge open);
//  3. concurrent half-open probes never exceed HalfOpenProbes;
//  4. a closed breaker never trips before FailureThreshold consecutive
//     failures of its own era.
func TestBreakerPropertyRandomSequences(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			cfg := BreakerConfig{
				FailureThreshold: 1 + rng.Intn(5),
				CoolDown:         time.Duration(1+rng.Intn(50)) * time.Millisecond,
				HalfOpenProbes:   1 + rng.Intn(3),
			}
			clk := newFakeClock()
			cfg.Clock = clk.Now
			b := NewBreaker(cfg)

			type pending struct {
				done  func(bool)
				state State
			}
			var inflight []pending
			consecFails := 0
			probes := 0
			var openedAt time.Time

			for step := 0; step < 400; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // Allow
					stBefore := b.State()
					done, err := b.Allow()
					now := clk.Now()
					if err != nil {
						if !errors.Is(err, ErrCircuitOpen) {
							t.Fatalf("seed %d step %d: refusal %v not ErrCircuitOpen", seed, step, err)
						}
						if stBefore == StateClosed {
							t.Fatalf("seed %d step %d: closed breaker refused", seed, step)
						}
						continue
					}
					// Invariant 1: no admission while open inside the cool-down.
					if stBefore == StateOpen && now.Sub(openedAt) < cfg.CoolDown {
						t.Fatalf("seed %d step %d: admitted during cool-down", seed, step)
					}
					if b.State() == StateHalfOpen {
						probes++
						// Invariant 3: probe concurrency is bounded.
						if probes > cfg.HalfOpenProbes {
							t.Fatalf("seed %d step %d: %d probes exceed limit %d",
								seed, step, probes, cfg.HalfOpenProbes)
						}
					}
					inflight = append(inflight, pending{done: done, state: b.State()})
				case op < 9: // resolve a random in-flight outcome
					if len(inflight) == 0 {
						continue
					}
					i := rng.Intn(len(inflight))
					p := inflight[i]
					inflight = append(inflight[:i], inflight[i+1:]...)
					ok := rng.Intn(3) > 0
					wasClosed := b.State() == StateClosed
					wasHalf := p.state == StateHalfOpen
					trips := b.Trips()
					p.done(ok)
					if wasHalf && probes > 0 {
						probes--
					}
					if wasClosed {
						if ok {
							consecFails = 0
						} else {
							consecFails++
						}
						// Invariant 4: no premature trip.
						if b.Trips() > trips && consecFails < cfg.FailureThreshold {
							t.Fatalf("seed %d step %d: tripped after %d fails (threshold %d)",
								seed, step, consecFails, cfg.FailureThreshold)
						}
					}
					if b.Trips() > trips {
						openedAt = clk.Now()
						consecFails = 0
						probes = 0
						inflight = nil // stale eras resolve as no-ops; stop tracking
					}
				default: // advance the clock
					clk.Advance(time.Duration(rng.Intn(int(cfg.CoolDown) + 1)))
				}

				// Invariant 2: after a full cool-down with no in-flight
				// probes, the breaker must admit a probe.
				if b.State() == StateHalfOpen && len(inflight) == 0 && probes == 0 {
					done, err := b.Allow()
					if err != nil {
						t.Fatalf("seed %d step %d: cooled-down breaker refused re-probe: %v", seed, step, err)
					}
					probes++
					inflight = append(inflight, pending{done: done, state: StateHalfOpen})
				}
			}
		})
	}
}

// TestBreakerConcurrentRaceClean hammers Allow/outcome/State/Trips from
// many goroutines under the race detector.
func TestBreakerConcurrentRaceClean(t *testing.T) {
	t.Parallel()
	b := NewBreaker(BreakerConfig{FailureThreshold: 4, CoolDown: time.Microsecond, HalfOpenProbes: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if done, err := b.Allow(); err == nil {
					done(i%3 != 0)
				} else if !errors.Is(err, ErrCircuitOpen) {
					t.Errorf("unexpected refusal %v", err)
					return
				}
				_ = b.State()
				_ = b.Trips()
			}
		}(g)
	}
	wg.Wait()
}
