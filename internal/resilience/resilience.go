// Package resilience is the overload-protection layer for the serving
// engines: the mechanisms that keep a PIM-backed kNN service delivering
// useful goodput when offered load or hardware fault rates exceed what
// the substrate can absorb.
//
// Real PIM evaluations stress that near-data throughput collapses
// ungracefully once host↔PIM transfer queues saturate: every admitted
// query still pays the crossbar transfer cost (§V-D's Tcost) whether or
// not it finishes in time, so an engine that accepts everything under
// overload burns its whole transfer budget on queries that time out —
// classic congestion collapse. This package provides four cooperating
// defenses, each orthogonal and individually disableable:
//
//   - Limiter: admission control. A concurrency cap with a bounded wait
//     queue; when both are full, the query is rejected immediately with
//     ErrOverloaded instead of queueing into certain timeout.
//   - Shedder: deadline-aware load shedding. Before any shard work, the
//     query's remaining deadline is compared against the observed p95
//     service time (an obs latency histogram); a query that cannot meet
//     its deadline is shed up front with ErrShedDeadline, spending zero
//     PIM transfer budget on doomed work.
//   - Breaker: a per-shard circuit breaker generalizing the one-shot
//     DeadDot host-scan fallback (internal/fault) into a stateful
//     closed → open → half-open machine driven by the fault/recovery
//     meters. While open, the shard serves the exact host-scan path;
//     half-open probes re-admit PIM traffic once faults subside.
//   - RetryBudget: a token bucket bounding transient-fault retries with
//     jittered backoff, so a fault storm degrades toward the host path
//     instead of amplifying load through retry traffic.
//
// Exactness is never at stake: every admitted query returns exact
// results (an open breaker only reroutes a shard to the host scan); only
// admission is lossy, and a lost query is always a typed error.
package resilience

import (
	"errors"
	"fmt"
	"time"
)

// The typed sentinels. Callers match them with errors.Is; the serving
// layer re-exports them through the pimmine facade.
var (
	// ErrOverloaded reports a query rejected by admission control: the
	// concurrency limit and its wait queue were both full.
	ErrOverloaded = errors.New("resilience: overloaded, query rejected by admission control")
	// ErrCircuitOpen reports a request refused by an open circuit
	// breaker (inside the serving engine this reroutes the shard to the
	// exact host scan rather than surfacing to the caller).
	ErrCircuitOpen = errors.New("resilience: circuit breaker open")
	// ErrShedDeadline reports a query shed before dispatch because its
	// remaining deadline was below the observed service time.
	ErrShedDeadline = errors.New("resilience: deadline too tight, query shed")
)

// Config bundles the four defenses for one serving engine. The zero
// value disables everything; each knob engages independently.
type Config struct {
	// MaxConcurrent caps queries executing at once. 0 disables
	// admission control (and with it MaxQueue).
	MaxConcurrent int
	// MaxQueue bounds queries waiting for a concurrency slot beyond
	// MaxConcurrent. 0 means no waiting: reject as soon as the
	// concurrency cap is reached.
	MaxQueue int
	// ShedFactor engages deadline-aware shedding: a query is shed when
	// its remaining deadline is below ShedFactor × p95 observed service
	// time. 0 disables shedding; 1 is the natural setting.
	ShedFactor float64
	// MinShedSamples is the number of completed queries the latency
	// histogram must hold before shedding engages (default 32) — the
	// p95 of a cold histogram is noise, not a service-time estimate.
	MinShedSamples int
	// ShedBuckets overrides the service-time histogram bounds (seconds,
	// ascending; default obs.DefLatencyBuckets).
	ShedBuckets []float64
	// Breaker configures the per-shard circuit breakers; the zero value
	// (FailureThreshold 0) disables them.
	Breaker BreakerConfig
	// Retry configures the transient-fault retry budget; the zero value
	// (Ratio 0) disables retries.
	Retry RetryConfig
}

// Default returns a production-shaped config sized to a worker count:
// admission at the worker pool's width with an equal wait queue,
// shedding at 1×p95, breakers tripping after 8 consecutive fault-hit
// queries with a 1s cool-down, and a 5% retry budget.
func Default(workers int) Config {
	if workers < 1 {
		workers = 1
	}
	return Config{
		MaxConcurrent:  workers,
		MaxQueue:       workers,
		ShedFactor:     1,
		MinShedSamples: 32,
		Breaker: BreakerConfig{
			FailureThreshold: 8,
			CoolDown:         time.Second,
			HalfOpenProbes:   3,
		},
		Retry: RetryConfig{
			Ratio:       0.05,
			Burst:       10,
			BaseBackoff: 500 * time.Microsecond,
			MaxBackoff:  8 * time.Millisecond,
		},
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.MaxConcurrent < 0 {
		return fmt.Errorf("resilience: negative MaxConcurrent %d", c.MaxConcurrent)
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("resilience: negative MaxQueue %d", c.MaxQueue)
	}
	if c.MaxQueue > 0 && c.MaxConcurrent == 0 {
		return fmt.Errorf("resilience: MaxQueue %d without MaxConcurrent", c.MaxQueue)
	}
	if c.ShedFactor < 0 || c.ShedFactor != c.ShedFactor {
		return fmt.Errorf("resilience: ShedFactor %v outside [0, +inf)", c.ShedFactor)
	}
	if c.MinShedSamples < 0 {
		return fmt.Errorf("resilience: negative MinShedSamples %d", c.MinShedSamples)
	}
	for i := 1; i < len(c.ShedBuckets); i++ {
		if !(c.ShedBuckets[i] > c.ShedBuckets[i-1]) {
			return fmt.Errorf("resilience: ShedBuckets not ascending at %d", i)
		}
	}
	if err := c.Breaker.Validate(); err != nil {
		return err
	}
	return c.Retry.Validate()
}
