package resilience

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrQuotaExceeded reports a request refused by a per-tenant token
// bucket: the tenant spent its provisioned rate and burst. Unlike
// ErrOverloaded (the whole engine is saturated) this is a per-tenant
// verdict — other tenants keep being served. The serving front-end maps
// it to HTTP 429 with a Retry-After derived from the bucket's refill.
var ErrQuotaExceeded = errors.New("resilience: tenant quota exceeded")

// TokenBucket is a per-tenant rate limiter: Rate tokens accrue per
// second up to Burst, one request costs one token. It is the quota half
// of multi-tenant isolation — the fair queue divides capacity among
// backlogged tenants, the bucket caps what any single tenant may offer
// in the first place. Safe for concurrent use.
type TokenBucket struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewTokenBucket builds a bucket earning rate tokens/second with the
// given burst capacity (the bucket starts full). rate <= 0 returns nil —
// a nil *TokenBucket means "unlimited" and its Take always admits. The
// now func is injectable for deterministic tests; nil uses time.Now.
func NewTokenBucket(rate, burst float64, now func() time.Time) *TokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &TokenBucket{rate: rate, burst: burst, now: now, tokens: burst, last: now()}
}

// Take withdraws one token. On an empty bucket it returns
// ErrQuotaExceeded (wrapped) plus the wait until the next token accrues,
// so callers can surface an honest Retry-After instead of inviting an
// immediate re-poll.
func (b *TokenBucket) Take() (time.Duration, error) {
	if b == nil {
		return 0, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	b.tokens += t.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return 0, nil
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return wait, fmt.Errorf("%w (retry in %s)", ErrQuotaExceeded, wait)
}

// Tokens returns the current balance (after refill), for metrics.
func (b *TokenBucket) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	b.tokens += t.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = t
	return b.tokens
}

// FairQueue is a weighted-fair admission queue: the multi-tenant
// generalization of Limiter. At most slots acquisitions are held at
// once; when they are all busy, waiting requests are granted in
// start-time fair queuing order (SFQ, Goyal et al.) rather than FIFO,
// so a tenant flooding the queue cannot starve the others — each
// backlogged tenant receives service in proportion to its weight, which
// is exactly the isolation the host↔PIM transfer budget needs at the
// server edge (one hot tenant saturating the crossbar queue would
// otherwise collapse everyone's goodput, not just its own).
//
// Every request carries a virtual start tag
//
//	start = max(vtime, lastFinish(tenant)),  finish = start + 1/weight
//
// where vtime is the start tag of the most recently dispatched request.
// Backlogged tenants chain their tags (+1/weight per request), so a
// tenant with 10× the traffic ages its tags 10× faster and the queue
// interleaves grants ~1:1 against an equal-weight tenant; an idle
// tenant's next request starts at the current vtime, so unused share is
// never banked. Per-tenant wait queues are bounded: beyond maxQueue
// waiters a tenant's requests are rejected immediately with
// ErrOverloaded, the same typed verdict the Limiter gives.
//
// FairQueue is safe for concurrent use.
type FairQueue struct {
	slots    int
	maxQueue int

	mu      sync.Mutex
	free    int
	vtime   float64
	seq     uint64
	tenants map[string]*fqTenant
	waiters fqHeap
}

// fqTenant is one tenant's fair-queue state.
type fqTenant struct {
	weight float64
	queued int     // waiters currently in the heap
	last   float64 // finish tag of the tenant's most recent request
}

// fqWaiter is one queued acquisition.
type fqWaiter struct {
	t       *fqTenant
	start   float64
	seq     uint64 // FIFO tie-break inside equal start tags
	ready   chan struct{}
	granted bool
	index   int // heap position (-1 once popped)
}

// fqHeap orders waiters by (start tag, arrival sequence).
type fqHeap []*fqWaiter

func (h fqHeap) Len() int { return len(h) }
func (h fqHeap) Less(i, j int) bool {
	if h[i].start != h[j].start {
		return h[i].start < h[j].start
	}
	return h[i].seq < h[j].seq
}
func (h fqHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *fqHeap) Push(x any) {
	w := x.(*fqWaiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *fqHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

// NewFairQueue builds a fair queue with the given concurrency slots
// (min 1) and per-tenant wait bound (min 0: reject once the slots are
// busy).
func NewFairQueue(slots, maxQueue int) *FairQueue {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &FairQueue{
		slots:    slots,
		maxQueue: maxQueue,
		free:     slots,
		tenants:  make(map[string]*fqTenant),
	}
}

// SetWeight registers (or re-weights) a tenant. Weights must be
// positive; tenants never registered get weight 1 on first use.
func (f *FairQueue) SetWeight(tenant string, weight float64) error {
	if !(weight > 0) {
		return fmt.Errorf("resilience: tenant %q weight %v must be positive", tenant, weight)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.tenant(tenant)
	t.weight = weight
	return nil
}

// tenant fetches or lazily creates a tenant record. Caller holds f.mu.
func (f *FairQueue) tenant(name string) *fqTenant {
	t := f.tenants[name]
	if t == nil {
		t = &fqTenant{weight: 1}
		f.tenants[name] = t
	}
	return t
}

// Acquire takes a slot for one request from tenant, waiting in the
// tenant's bounded queue in weighted-fair order when all slots are
// busy. It returns the release function for the slot, or a typed error:
// ErrOverloaded (wrapped with the tenant and its queue depth) when the
// tenant's wait queue is full, or the context's cause when ctx ends
// while queued. Release must be called exactly once on success.
func (f *FairQueue) Acquire(ctx context.Context, tenant string) (release func(), err error) {
	f.mu.Lock()
	t := f.tenant(tenant)
	if f.free > 0 && len(f.waiters) == 0 {
		// Fast path: tag the request and run. The tag still advances the
		// tenant's finish time so a burst arriving next instant queues
		// behind its own history, not ahead of everyone else's.
		start := maxF(f.vtime, t.last)
		t.last = start + 1/t.weight
		f.vtime = start
		f.free--
		f.mu.Unlock()
		return f.release, nil
	}
	if t.queued >= f.maxQueue {
		queued := t.queued
		f.mu.Unlock()
		return nil, fmt.Errorf("%w (tenant %q: %d queued, fair-queue bound %d)",
			ErrOverloaded, tenant, queued, f.maxQueue)
	}
	start := maxF(f.vtime, t.last)
	t.last = start + 1/t.weight
	f.seq++
	w := &fqWaiter{t: t, start: start, seq: f.seq, ready: make(chan struct{})}
	heap.Push(&f.waiters, w)
	t.queued++
	f.mu.Unlock()

	select {
	case <-w.ready:
		return f.release, nil
	case <-ctx.Done():
		f.mu.Lock()
		if w.granted {
			// Lost the race: the grant happened while ctx fired. The
			// caller walks away, so the slot goes back and the next
			// waiter runs.
			f.free++
			f.dispatch()
			f.mu.Unlock()
			return nil, context.Cause(ctx)
		}
		heap.Remove(&f.waiters, w.index)
		t.queued--
		f.mu.Unlock()
		return nil, context.Cause(ctx)
	}
}

// release returns a slot and dispatches the next waiter.
func (f *FairQueue) release() {
	f.mu.Lock()
	f.free++
	f.dispatch()
	f.mu.Unlock()
}

// dispatch grants free slots to waiters in (start, seq) order. Caller
// holds f.mu.
func (f *FairQueue) dispatch() {
	for f.free > 0 && len(f.waiters) > 0 {
		w := heap.Pop(&f.waiters).(*fqWaiter)
		w.t.queued--
		w.granted = true
		f.vtime = maxF(f.vtime, w.start)
		f.free--
		close(w.ready)
	}
}

// InFlight returns the number of held slots.
func (f *FairQueue) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.slots - f.free
}

// Queued returns tenant's current wait-queue depth.
func (f *FairQueue) Queued(tenant string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t := f.tenants[tenant]; t != nil {
		return t.queued
	}
	return 0
}

// QueuedTotal returns the wait-queue depth across all tenants.
func (f *FairQueue) QueuedTotal() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
