package resilience

import (
	"context"
	"fmt"
)

// Limiter is the admission controller: a concurrency cap with a bounded
// wait queue in front of it. At most maxConcurrent acquisitions are held
// at once; up to maxQueue further callers wait for a slot; anyone beyond
// that is rejected immediately with ErrOverloaded — under overload the
// engine answers "no" in microseconds instead of spending a deadline's
// worth of queueing (and crossbar transfers) on a query it cannot
// finish. It is safe for concurrent use.
type Limiter struct {
	sem   chan struct{} // held concurrency slots
	queue chan struct{} // held wait-queue slots
}

// NewLimiter builds a limiter. maxConcurrent must be ≥ 1; maxQueue ≥ 0
// (0 rejects as soon as the concurrency cap is reached).
func NewLimiter(maxConcurrent, maxQueue int) *Limiter {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	l := &Limiter{sem: make(chan struct{}, maxConcurrent)}
	if maxQueue > 0 {
		l.queue = make(chan struct{}, maxQueue)
	}
	return l
}

// Acquire takes a concurrency slot, waiting in the bounded queue if the
// cap is reached. It returns the release function for the slot, or a
// typed error: ErrOverloaded (wrapped with the observed occupancy) when
// cap and queue are both full, or the context's cause when ctx ends
// while queued. Release must be called exactly once on success.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot admits without touching the queue.
	select {
	case l.sem <- struct{}{}:
		return l.release, nil
	default:
	}
	if l.queue == nil {
		return nil, fmt.Errorf("%w (%d in flight, no wait queue)", ErrOverloaded, len(l.sem))
	}
	select {
	case l.queue <- struct{}{}:
	default:
		return nil, fmt.Errorf("%w (%d in flight, %d queued)", ErrOverloaded, len(l.sem), len(l.queue))
	}
	// Queued: wait for a slot or for the caller to give up. The queue
	// slot is returned either way.
	select {
	case l.sem <- struct{}{}:
		<-l.queue
		return l.release, nil
	case <-ctx.Done():
		<-l.queue
		return nil, context.Cause(ctx)
	}
}

func (l *Limiter) release() { <-l.sem }

// InFlight returns the number of held concurrency slots.
func (l *Limiter) InFlight() int { return len(l.sem) }

// Queued returns the number of callers waiting for a slot.
func (l *Limiter) Queued() int {
	if l.queue == nil {
		return 0
	}
	return len(l.queue)
}
