package vec

import (
	"math"
	"slices"
	"sort"
)

// Neighbor is one kNN result: the index of a dataset object and its distance
// (or, for similarity measures, its negated similarity so that smaller is
// always better).
type Neighbor struct {
	Index int
	Dist  float64
}

// TopK maintains the k smallest neighbors seen so far under the total
// order (Dist, Index) — lexicographic, ties broken by smaller index —
// using a bounded binary max-heap: the root is always the current worst
// of the kept k, so Threshold is O(1) and Push is O(log k).
//
// Because the order is total, the collected set is canonical: it depends
// only on the candidates offered, never on their arrival order. That is
// what makes shard merges, delta-buffer merges and compaction swaps
// byte-identical to a single scan over the union of their inputs.
//
// The zero value is not usable; construct with NewTopK.
type TopK struct {
	k    int
	heap []Neighbor // max-heap on (Dist, Index)
}

// worse reports whether a ranks strictly after b in the (Dist, Index)
// total order, i.e. a is a worse neighbor than b.
func worse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Index > b.Index
}

// NewTopK creates a collector for the k nearest neighbors. k must be >= 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("vec: TopK requires k >= 1")
	}
	return &TopK{k: k, heap: make([]Neighbor, 0, k)}
}

// Reset empties the collector and re-arms it for k neighbors, reusing the
// heap's storage when it is large enough — the allocation-free per-query
// reset of the steady-state search paths.
func (t *TopK) Reset(k int) {
	if k < 1 {
		panic("vec: TopK requires k >= 1")
	}
	if cap(t.heap) < k {
		t.heap = make([]Neighbor, 0, k)
	}
	t.k = k
	t.heap = t.heap[:0]
}

// Len returns how many neighbors are currently held (≤ k).
func (t *TopK) Len() int { return len(t.heap) }

// Full reports whether k neighbors have been collected.
func (t *TopK) Full() bool { return len(t.heap) == t.k }

// Threshold returns the pruning threshold: the distance of the current k-th
// nearest neighbor, or +Inf while fewer than k neighbors are held. Only a
// candidate whose lower bound strictly exceeds this value is provably
// outside the result set — a bound that merely ties it can still enter by
// winning the (Dist, Index) tiebreak, so prune with > and never >=.
func (t *TopK) Threshold() float64 {
	if len(t.heap) < t.k {
		return math.Inf(1)
	}
	return t.heap[0].Dist
}

// Push offers a candidate. It is kept if fewer than k neighbors are held
// or it precedes the current k-th neighbor in (Dist, Index) order — an
// equal-distance candidate with a smaller index evicts it. Returns true
// if kept.
func (t *TopK) Push(index int, dist float64) bool {
	nb := Neighbor{index, dist}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, nb)
		t.siftUp(len(t.heap) - 1)
		return true
	}
	if !worse(t.heap[0], nb) {
		return false
	}
	t.heap[0] = nb
	t.siftDown(0)
	return true
}

// Results returns the collected neighbors sorted by ascending distance,
// breaking ties by ascending index so results are deterministic.
func (t *TopK) Results() []Neighbor {
	out := make([]Neighbor, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// AppendResults appends the collected neighbors to dst in the same
// ascending (Dist, Index) order Results uses and returns the extended
// slice. With a dst of sufficient capacity it performs no allocations
// (slices.SortFunc sorts in place without boxing); the heap is left
// intact. Because the order is total, the output is identical to
// Results() regardless of insertion history.
func (t *TopK) AppendResults(dst []Neighbor) []Neighbor {
	start := len(dst)
	dst = append(dst, t.heap...)
	slices.SortFunc(dst[start:], func(a, b Neighbor) int {
		switch {
		case a.Dist < b.Dist:
			return -1
		case a.Dist > b.Dist:
			return 1
		default:
			return a.Index - b.Index
		}
	})
	return dst
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(t.heap[i], t.heap[parent]) {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && worse(t.heap[l], t.heap[worst]) {
			worst = l
		}
		if r < n && worse(t.heap[r], t.heap[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}
