package vec

import (
	"math"
	"sort"
)

// Neighbor is one kNN result: the index of a dataset object and its distance
// (or, for similarity measures, its negated similarity so that smaller is
// always better).
type Neighbor struct {
	Index int
	Dist  float64
}

// TopK maintains the k smallest-distance neighbors seen so far using a
// bounded binary max-heap: the root is always the current worst (largest
// distance) of the kept k, so Threshold is O(1) and Push is O(log k).
//
// The zero value is not usable; construct with NewTopK.
type TopK struct {
	k    int
	heap []Neighbor // max-heap on Dist
}

// NewTopK creates a collector for the k nearest neighbors. k must be >= 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("vec: TopK requires k >= 1")
	}
	return &TopK{k: k, heap: make([]Neighbor, 0, k)}
}

// Len returns how many neighbors are currently held (≤ k).
func (t *TopK) Len() int { return len(t.heap) }

// Full reports whether k neighbors have been collected.
func (t *TopK) Full() bool { return len(t.heap) == t.k }

// Threshold returns the pruning threshold: the distance of the current k-th
// nearest neighbor, or +Inf while fewer than k neighbors are held. Any
// candidate whose lower bound meets or exceeds this value cannot enter the
// result set.
func (t *TopK) Threshold() float64 {
	if len(t.heap) < t.k {
		return math.Inf(1)
	}
	return t.heap[0].Dist
}

// Push offers a candidate. It is kept only if fewer than k neighbors are
// held or it beats the current k-th neighbor. Returns true if kept.
func (t *TopK) Push(index int, dist float64) bool {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Neighbor{index, dist})
		t.siftUp(len(t.heap) - 1)
		return true
	}
	if dist >= t.heap[0].Dist {
		return false
	}
	t.heap[0] = Neighbor{index, dist}
	t.siftDown(0)
	return true
}

// Results returns the collected neighbors sorted by ascending distance,
// breaking ties by ascending index so results are deterministic.
func (t *TopK) Results() []Neighbor {
	out := make([]Neighbor, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Index < out[j].Index
	})
	return out
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].Dist >= t.heap[i].Dist {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.heap[l].Dist > t.heap[largest].Dist {
			largest = l
		}
		if r < n && t.heap[r].Dist > t.heap[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}
