package vec

import (
	"math/rand"
	"testing"
)

func TestMergeNeighborsMatchesSingleScan(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(8)
		nSources := 1 + rng.Intn(4)
		// Simulate a global candidate pool partitioned across sources.
		nTotal := rng.Intn(40)
		all := make([]Neighbor, nTotal)
		lists := make([][]Neighbor, nSources)
		tops := make([]*TopK, nSources)
		for s := range tops {
			tops[s] = NewTopK(k)
		}
		for i := 0; i < nTotal; i++ {
			// Coarse distances force ties; index i is the global id.
			d := float64(rng.Intn(5))
			all[i] = Neighbor{Index: i, Dist: d}
			tops[rng.Intn(nSources)].Push(i, d)
		}
		for s, tp := range tops {
			lists[s] = tp.Results()
		}
		got := MergeNeighbors(k, lists...)

		ref := NewTopK(k)
		for _, nb := range all {
			ref.Push(nb.Index, nb.Dist)
		}
		want := ref.Results()
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d != %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: merged[%d] = %+v, want %+v\ngot %v\nwant %v",
					trial, i, got[i], want[i], got, want)
			}
		}
	}
}

// TestTopKCanonicalUnderTies pins the property the delta subsystem's
// exactness proof rests on: the collected set depends only on the
// candidates offered, not on their arrival order, even with tied
// distances at the k-th boundary.
func TestTopKCanonicalUnderTies(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(5)
		n := rng.Intn(25)
		cand := make([]Neighbor, n)
		for i := range cand {
			cand[i] = Neighbor{Index: i, Dist: float64(rng.Intn(4))}
		}
		var base []Neighbor
		for pass := 0; pass < 3; pass++ {
			order := rng.Perm(n)
			top := NewTopK(k)
			for _, i := range order {
				top.Push(cand[i].Index, cand[i].Dist)
			}
			got := top.Results()
			if pass == 0 {
				base = got
				continue
			}
			if len(got) != len(base) {
				t.Fatalf("trial %d: order-dependent length", trial)
			}
			for i := range got {
				if got[i] != base[i] {
					t.Fatalf("trial %d: order-dependent results: %v vs %v", trial, got, base)
				}
			}
		}
		// An equal-distance candidate with a smaller index must evict.
		top := NewTopK(1)
		top.Push(9, 2)
		if !top.Push(4, 2) {
			t.Fatal("equal-dist smaller index was not kept")
		}
		if got := top.Results(); got[0] != (Neighbor{Index: 4, Dist: 2}) {
			t.Fatalf("got %v", got)
		}
		if top.Push(7, 2) {
			t.Fatal("equal-dist larger index was kept")
		}
	}
}

func TestMergeNeighborsTieBreaksByIndex(t *testing.T) {
	t.Parallel()
	got := MergeNeighbors(3,
		[]Neighbor{{Index: 5, Dist: 1}, {Index: 9, Dist: 2}},
		[]Neighbor{{Index: 2, Dist: 1}, {Index: 7, Dist: 1}},
	)
	want := []Neighbor{{Index: 2, Dist: 1}, {Index: 5, Dist: 1}, {Index: 7, Dist: 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
