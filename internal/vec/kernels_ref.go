package vec

// Retained scalar reference kernels — the executable specifications the
// kernel-equivalence harness (tests, fuzzers, ext-kernels benchmarks)
// pins the optimized kernels in kernels.go against. These live in their
// own file because they keep their natural bounds checks: the CI
// kernel-verify job asserts kernels.go compiles with zero IsInBounds
// under -d=ssa/check_bce, and these references are exempt by design.

// DotRef is the retained scalar reference for Dot, the executable
// specification the equivalence tests and fuzzers pin dotKernel against.
// It must never be optimized. Panics on length mismatch like Dot.
func DotRef(a, b []float64) float64 {
	checkLens("dot", a, b)
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// IntDotRef is the retained scalar reference for IntDot.
func IntDotRef(a, b []uint32) int64 {
	if len(a) != len(b) {
		panicLens("intdot", len(a), len(b))
	}
	var s int64
	for i := range a {
		s += int64(a[i]) * int64(b[i])
	}
	return s
}

// SqNormRef is the retained scalar reference for SqNorm.
func SqNormRef(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return s
}
