package vec

import "sort"

// MergeNeighbors merges per-source top-k lists into one global top-k,
// ordered by (Dist, Index) — the same total order TopK.Results and the
// serve shard merge use — and truncated to k.
//
// Exactness argument: if every source contributes its own k best under
// (dist, index) order, the global k best are a subset of the union, so
// sorting the concatenation and truncating is equivalent to a single
// scan over all sources. Inputs need not be sorted; indices must already
// be in the shared (global) id space.
func MergeNeighbors(k int, lists ...[]Neighbor) []Neighbor {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]Neighbor, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Index < out[j].Index
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
