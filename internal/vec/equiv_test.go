package vec

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// The unrolled kernels must be BIT-identical to the retained references —
// not merely close. For the float kernels that requires the kernels to
// preserve the references' accumulator structure and evaluation order
// (IEEE 754 float addition is not associative); the integer kernel is free
// to reassociate. These differential tests and the fuzzer below are what
// license the optimized kernels to replace the references everywhere,
// including under the byte-identical eval goldens.

// lengths crosses every unroll boundary: the 4-wide body, the tail, and
// the empty case.
var lengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65, 100, 128, 257}

func randFloats(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return v
}

func TestDotMatchesRef(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	for _, n := range lengths {
		for rep := 0; rep < 4; rep++ {
			a, b := randFloats(rng, n), randFloats(rng, n)
			got, want := Dot(a, b), DotRef(a, b)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d: Dot=%x, DotRef=%x", n, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

func TestSqNormMatchesRef(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	for _, n := range lengths {
		for rep := 0; rep < 4; rep++ {
			a := randFloats(rng, n)
			got, want := SqNorm(a), SqNormRef(a)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d: SqNorm=%x, SqNormRef=%x", n, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

func TestIntDotMatchesRef(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	for _, n := range lengths {
		for rep := 0; rep < 4; rep++ {
			a := make([]uint32, n)
			b := make([]uint32, n)
			for i := range a {
				a[i] = rng.Uint32()
				b[i] = rng.Uint32()
			}
			got, want := IntDot(a, b), IntDotRef(a, b)
			if got != want {
				t.Fatalf("n=%d: IntDot=%d, IntDotRef=%d", n, got, want)
			}
		}
	}
}

func TestKernelsPanicOnMismatch(t *testing.T) {
	t.Parallel()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on length mismatch", name)
			}
		}()
		fn()
	}
	mustPanic("Dot", func() { Dot([]float64{1}, []float64{1, 2}) })
	mustPanic("IntDot", func() { IntDot([]uint32{1}, []uint32{1, 2}) })
}

// floatsFromBytes decodes len(data)/8 float64s, mapping non-finite values
// to small finite ones so equality stays meaningful (NaN != NaN would make
// every comparison vacuous, and Inf−Inf poisons the reference too).
func floatsFromBytes(data []byte) []float64 {
	n := len(data) / 8
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		f := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		if math.IsNaN(f) || math.IsInf(f, 0) {
			f = float64(i) * 0.5
		}
		v[i] = f
	}
	return v
}

// FuzzVecKernelEquivalence drives arbitrary float and integer payloads
// through the optimized kernels and their references, requiring
// bit-identical results at every split of the payload into (a, b).
func FuzzVecKernelEquivalence(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte("0123456789abcdef0123456789abcdef0123456789abcdef"), uint8(3))
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\xf0\x7f\x01\x02\x03\x04\x05\x06\x07\x08"), uint8(1)) // +Inf bits
	seed := make([]byte, 8*33)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed, uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, splitRaw uint8) {
		all := floatsFromBytes(data)
		if len(all) == 0 {
			return
		}
		// Split into two equal-length operands at a fuzzed offset.
		n := len(all) / 2
		off := int(splitRaw) % (len(all) - n + 1)
		a, b := all[:n], all[off:off+n]
		if got, want := Dot(a, b), DotRef(a, b); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: Dot=%x, DotRef=%x", n, math.Float64bits(got), math.Float64bits(want))
		}
		if got, want := SqNorm(all), SqNormRef(all); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: SqNorm=%x, SqNormRef=%x", len(all), math.Float64bits(got), math.Float64bits(want))
		}
		ia := make([]uint32, n)
		ib := make([]uint32, n)
		for i := 0; i < n; i++ {
			ia[i] = uint32(math.Float64bits(a[i]))
			ib[i] = uint32(math.Float64bits(b[i]) >> 32)
		}
		if got, want := IntDot(ia, ib), IntDotRef(ia, ib); got != want {
			t.Fatalf("n=%d: IntDot=%d, IntDotRef=%d", n, got, want)
		}
	})
}

// TestTopKAppendResultsMatchesResults pins the allocation-free result path
// bit-identical to Results across random insertion histories.
func TestTopKAppendResultsMatchesResults(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	dst := make([]Neighbor, 0, 32)
	for rep := 0; rep < 200; rep++ {
		k := rng.Intn(8) + 1
		top := NewTopK(k)
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			top.Push(i, float64(rng.Intn(10))) // many distance ties
		}
		want := top.Results()
		dst = top.AppendResults(dst[:0])
		if len(dst) != len(want) {
			t.Fatalf("rep %d: AppendResults len %d, Results len %d", rep, len(dst), len(want))
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("rep %d pos %d: AppendResults %+v, Results %+v", rep, i, dst[i], want[i])
			}
		}
	}
}

// TestTopKReset pins Reset's reuse semantics: emptied, re-armed for the
// new k, and allocation-free when the retained heap suffices.
func TestTopKReset(t *testing.T) {
	t.Parallel()
	top := NewTopK(8)
	for i := 0; i < 20; i++ {
		top.Push(i, float64(20-i))
	}
	top.Reset(3)
	if top.Len() != 0 || top.Full() {
		t.Fatalf("after Reset: len=%d full=%v", top.Len(), top.Full())
	}
	for i := 0; i < 10; i++ {
		top.Push(i, float64(i))
	}
	res := top.Results()
	if len(res) != 3 || res[0].Index != 0 || res[2].Index != 2 {
		t.Fatalf("after Reset(3): %+v", res)
	}
	allocs := testing.AllocsPerRun(100, func() {
		top.Reset(3)
		top.Push(1, 1)
	})
	if allocs != 0 {
		t.Fatalf("Reset+Push allocated %.1f times per run, want 0", allocs)
	}
}
