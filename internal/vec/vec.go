// Package vec provides the dense-vector containers and arithmetic kernels
// that every other package in this repository builds on: row-major float
// matrices, dot products, norms, per-segment statistics, and a bounded
// top-k heap used by the kNN algorithms.
//
// All floating-point data is held as float64 for accumulation accuracy;
// the architecture model (internal/arch) separately accounts for the
// modeled operand width (32 bits, matching the paper's setup).
package vec

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of N rows by D columns. It is the
// canonical in-memory representation of a dataset: one row per object.
type Matrix struct {
	N, D int
	Data []float64 // len == N*D
}

// NewMatrix allocates an N×D zero matrix.
func NewMatrix(n, d int) *Matrix {
	if n < 0 || d < 0 {
		panic(fmt.Sprintf("vec: invalid matrix shape %dx%d", n, d))
	}
	return &Matrix{N: n, D: d, Data: make([]float64, n*d)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying the
// values.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	d := len(rows[0])
	m := NewMatrix(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("vec: row %d has length %d, want %d", i, len(r), d)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Row returns row i as a slice sharing the matrix's storage.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.D : (i+1)*m.D : (i+1)*m.D]
}

// Slice returns rows [lo,hi) as a matrix view sharing m's storage — the
// zero-copy row-wise partitioning used by the sharded query engine. It
// panics on an invalid range, because shard boundaries are computed, not
// user input.
func (m *Matrix) Slice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.N {
		panic(fmt.Sprintf("vec: slice [%d,%d) outside matrix of %d rows", lo, hi, m.N))
	}
	return &Matrix{N: hi - lo, D: m.D, Data: m.Data[lo*m.D : hi*m.D : hi*m.D]}
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N, m.D)
	copy(c.Data, m.Data)
	return c
}

// Bytes reports the modeled storage size of the matrix assuming the given
// operand width in bits (the paper models 32-bit operands regardless of the
// in-memory Go representation).
func (m *Matrix) Bytes(operandBits int) int64 {
	return int64(m.N) * int64(m.D) * int64(operandBits) / 8
}

// checkLens panics on a float-slice length mismatch with op's message.
func checkLens(op string, a, b []float64) {
	if len(a) != len(b) {
		panicLens(op, len(a), len(b))
	}
}

func panicLens(op string, la, lb int) {
	panic(fmt.Sprintf("vec: %s of mismatched lengths %d and %d", op, la, lb))
}

// Dot returns the inner product of a and b. It panics if the lengths differ,
// because a length mismatch is always a programming error in this codebase.
// The unrolled kernel is bit-identical to DotRef (same accumulator, same
// evaluation order — differentially tested).
func Dot(a, b []float64) float64 {
	checkLens("dot", a, b)
	return dotKernel(a, b)
}

// IntDot returns the inner product of two non-negative integer vectors as
// an int64, mirroring what the ReRAM crossbar computes in the analog domain.
// Differentially tested bit-identical to IntDotRef.
func IntDot(a, b []uint32) int64 {
	if len(a) != len(b) {
		panicLens("intdot", len(a), len(b))
	}
	return intDotKernel(a, b)
}

// SqNorm returns the squared L2 norm Σ aᵢ². Differentially tested
// bit-identical to SqNormRef.
func SqNorm(a []float64) float64 {
	return sqNormKernel(a)
}

// Norm returns the L2 norm.
func Norm(a []float64) float64 { return math.Sqrt(SqNorm(a)) }

// Sum returns Σ aᵢ.
func Sum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of a, or 0 for an empty slice.
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a))
}

// Std returns the population standard deviation of a (σ with 1/n), or 0 for
// an empty slice. The population form matches the LB_FNN definition in the
// paper, where σ(p̂ᵢ) is computed over the fixed-length segment.
func Std(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	mu := Mean(a)
	var s float64
	for _, v := range a {
		dv := v - mu
		s += dv * dv
	}
	return math.Sqrt(s / float64(len(a)))
}

// SegmentStats divides a d-dimensional vector into segs equal segments and
// returns the per-segment means and population standard deviations. It is
// the Φ precomputation used by LB_FNN (Hwang et al., CVPR 2012): the vector
// is split into d′ = segs segments of length l = d/segs.
//
// d must be divisible by segs; callers pick segment counts accordingly
// (the dataset generators use power-of-two-friendly dimensionalities).
func SegmentStats(v []float64, segs int) (mu, sigma []float64, err error) {
	if segs <= 0 || len(v)%segs != 0 {
		return nil, nil, fmt.Errorf("vec: cannot split %d dims into %d equal segments", len(v), segs)
	}
	mu = make([]float64, segs)
	sigma = make([]float64, segs)
	if err := SegmentStatsInto(v, segs, mu, sigma); err != nil {
		return nil, nil, err
	}
	return mu, sigma, nil
}

// SegmentStatsInto is SegmentStats writing into caller-owned buffers (both
// len segs), the allocation-free form the steady-state query paths use.
func SegmentStatsInto(v []float64, segs int, mu, sigma []float64) error {
	d := len(v)
	if segs <= 0 || d%segs != 0 {
		return fmt.Errorf("vec: cannot split %d dims into %d equal segments", d, segs)
	}
	if len(mu) != segs || len(sigma) != segs {
		return fmt.Errorf("vec: segment buffers of %d/%d, want %d", len(mu), len(sigma), segs)
	}
	l := d / segs
	for i := 0; i < segs; i++ {
		seg := v[i*l : (i+1)*l]
		mu[i] = Mean(seg)
		sigma[i] = Std(seg)
	}
	return nil
}

// Scale multiplies every element of a by f in place.
func Scale(a []float64, f float64) {
	for i := range a {
		a[i] *= f
	}
}

// AddTo accumulates src into dst element-wise. It panics on length mismatch.
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: addto of mismatched lengths %d and %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Equal reports whether a and b have the same length and all elements within
// tol of each other.
func Equal(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
