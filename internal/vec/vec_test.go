package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixShape(t *testing.T) {
	t.Parallel()
	m := NewMatrix(3, 4)
	if m.N != 3 || m.D != 4 || len(m.Data) != 12 {
		t.Fatalf("NewMatrix(3,4) = %dx%d with %d values", m.N, m.D, len(m.Data))
	}
	m.Row(1)[2] = 7
	if m.Data[1*4+2] != 7 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestMatrixRowBounds(t *testing.T) {
	t.Parallel()
	m := NewMatrix(2, 3)
	row := m.Row(0)
	if len(row) != 3 || cap(row) != 3 {
		t.Fatalf("Row(0) len=%d cap=%d, want 3/3 (full slice expression)", len(row), cap(row))
	}
}

func TestFromRows(t *testing.T) {
	t.Parallel()
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 3 || m.D != 2 || m.Row(2)[1] != 6 {
		t.Fatalf("FromRows built %dx%d, row2=%v", m.N, m.D, m.Row(2))
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("FromRows must reject ragged rows")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.N != 0 {
		t.Fatalf("FromRows(nil) = %v, %v", empty, err)
	}
}

func TestClone(t *testing.T) {
	t.Parallel()
	m := NewMatrix(2, 2)
	m.Row(0)[0] = 1
	c := m.Clone()
	c.Row(0)[0] = 9
	if m.Row(0)[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestBytes(t *testing.T) {
	t.Parallel()
	m := NewMatrix(10, 8)
	if got := m.Bytes(32); got != 320 {
		t.Fatalf("Bytes(32) = %d, want 320", got)
	}
}

func TestDot(t *testing.T) {
	t.Parallel()
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Dot must panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestIntDot(t *testing.T) {
	t.Parallel()
	// Fig 1's example: [3,1,0]·[3,1,2] = 10, [1,2,3]·[3,1,2] = 11,
	// [2,0,1]·[3,1,2] = 8.
	q := []uint32{3, 1, 2}
	for _, tc := range []struct {
		p    []uint32
		want int64
	}{
		{[]uint32{3, 1, 0}, 10},
		{[]uint32{1, 2, 3}, 11},
		{[]uint32{2, 0, 1}, 8},
	} {
		if got := IntDot(tc.p, q); got != tc.want {
			t.Errorf("IntDot(%v, %v) = %d, want %d", tc.p, q, got, tc.want)
		}
	}
}

func TestIntDotNoOverflow(t *testing.T) {
	t.Parallel()
	// Values at the paper's α=10⁶ scale must accumulate in int64 without
	// overflow even at Trevi's d=4096 (max dot ≈ 4·10¹⁵ < 2⁶³).
	a := make([]uint32, 4096)
	for i := range a {
		a[i] = 1_000_000
	}
	want := int64(4096) * 1_000_000 * 1_000_000
	if got := IntDot(a, a); got != want {
		t.Fatalf("IntDot overflow: got %d, want %d", got, want)
	}
}

func TestNormsAndStats(t *testing.T) {
	t.Parallel()
	v := []float64{3, 4}
	if SqNorm(v) != 25 || Norm(v) != 5 {
		t.Fatalf("SqNorm/Norm of %v = %v/%v", v, SqNorm(v), Norm(v))
	}
	if Sum(v) != 7 || Mean(v) != 3.5 {
		t.Fatalf("Sum/Mean of %v = %v/%v", v, Sum(v), Mean(v))
	}
	if Std([]float64{2, 2, 2}) != 0 {
		t.Fatal("Std of constant vector must be 0")
	}
	if got := Std([]float64{1, 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("population Std of {1,3} = %v, want 1", got)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("Mean/Std of empty slice must be 0")
	}
}

func TestSegmentStats(t *testing.T) {
	t.Parallel()
	v := []float64{1, 3, 2, 2, 0, 4}
	mu, sigma, err := SegmentStats(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantMu := []float64{2, 2, 2}
	wantSg := []float64{1, 0, 2}
	if !Equal(mu, wantMu, 1e-12) || !Equal(sigma, wantSg, 1e-12) {
		t.Fatalf("SegmentStats = %v/%v, want %v/%v", mu, sigma, wantMu, wantSg)
	}
	if _, _, err := SegmentStats(v, 4); err == nil {
		t.Fatal("SegmentStats must reject non-divisible segment counts")
	}
}

func TestScaleAddTo(t *testing.T) {
	t.Parallel()
	a := []float64{1, 2}
	Scale(a, 3)
	if a[0] != 3 || a[1] != 6 {
		t.Fatalf("Scale = %v", a)
	}
	AddTo(a, []float64{1, 1})
	if a[0] != 4 || a[1] != 7 {
		t.Fatalf("AddTo = %v", a)
	}
}

// Property: Dot is symmetric and linear in its first argument.
func TestDotPropertiesQuick(t *testing.T) {
	t.Parallel()
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // keep the check numerically meaningful
			}
		}
		sym := math.Abs(Dot(a, b)-Dot(b, a)) <= 1e-9*(1+math.Abs(Dot(a, b)))
		a2 := make([]float64, n)
		for i := range a {
			a2[i] = 2 * a[i]
		}
		lin := math.Abs(Dot(a2, b)-2*Dot(a, b)) <= 1e-6*(1+math.Abs(Dot(a, b)))
		return sym && lin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cauchy–Schwarz, |a·b| ≤ ‖a‖‖b‖.
func TestCauchySchwarzQuick(t *testing.T) {
	t.Parallel()
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		return math.Abs(Dot(a, b)) <= Norm(a)*Norm(b)*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKBasic(t *testing.T) {
	t.Parallel()
	top := NewTopK(3)
	if !math.IsInf(top.Threshold(), 1) {
		t.Fatal("empty TopK threshold must be +Inf")
	}
	for i, d := range []float64{5, 1, 4, 2, 3} {
		top.Push(i, d)
	}
	res := top.Results()
	if len(res) != 3 || res[0].Dist != 1 || res[1].Dist != 2 || res[2].Dist != 3 {
		t.Fatalf("TopK results = %v", res)
	}
	if top.Threshold() != 3 {
		t.Fatalf("threshold = %v, want 3", top.Threshold())
	}
}

func TestTopKRejectsWorse(t *testing.T) {
	t.Parallel()
	top := NewTopK(2)
	top.Push(0, 1)
	top.Push(1, 2)
	if top.Push(2, 2) {
		t.Fatal("equal-to-threshold candidate must be rejected")
	}
	if !top.Push(3, 1.5) {
		t.Fatal("better candidate must be accepted")
	}
}

func TestTopKTiesDeterministic(t *testing.T) {
	t.Parallel()
	top := NewTopK(2)
	top.Push(5, 1)
	top.Push(3, 1)
	res := top.Results()
	if res[0].Index != 3 || res[1].Index != 5 {
		t.Fatalf("tie order = %v, want ascending index", res)
	}
}

// Property: TopK matches a full sort-and-truncate reference.
func TestTopKMatchesSortQuick(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(n)
		dists := make([]float64, n)
		for i := range dists {
			dists[i] = math.Floor(rng.Float64()*100) / 10 // force ties
		}
		top := NewTopK(k)
		for i, d := range dists {
			top.Push(i, d)
		}
		got := top.Results()
		ref := make([]Neighbor, n)
		for i, d := range dists {
			ref[i] = Neighbor{i, d}
		}
		// reference: stable selection of k smallest by (dist, index)
		for i := 0; i < k; i++ {
			minJ := i
			for j := i + 1; j < n; j++ {
				if ref[j].Dist < ref[minJ].Dist ||
					(ref[j].Dist == ref[minJ].Dist && ref[j].Index < ref[minJ].Index) {
					minJ = j
				}
			}
			ref[i], ref[minJ] = ref[minJ], ref[i]
		}
		for i := 0; i < k; i++ {
			if got[i].Dist != ref[i].Dist {
				t.Fatalf("trial %d: k=%d pos=%d got dist %v want %v", trial, k, i, got[i].Dist, ref[i].Dist)
			}
		}
	}
}

func TestTopKPanicsOnZeroK(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("NewTopK(0) must panic")
		}
	}()
	NewTopK(0)
}
