package vec

// This file holds the unrolled hot-loop kernels behind Dot, IntDot and
// SqNorm, plus the retained scalar references the kernel-equivalence
// harness pins them against.
//
// The loops use the slice-advancing idiom (index constants 0..3 under a
// len>=4 guard, then a=a[4:]) so the compiler's prove pass eliminates
// every bounds check — `go build -gcflags=-d=ssa/check_bce` reports no
// IsInBounds in this file, which the CI kernel-verify job asserts — and
// the 4-wide bodies vectorize under GOAMD64=v3.
//
// CRITICAL INVARIANT — float kernels preserve evaluation order. The float
// accumulations run in strictly ascending index order into a single
// accumulator, exactly like the references: reassociating float adds
// (e.g. four partial sums) would change low-order bits and break the
// byte-identical differential goldens in internal/eval. Only the integer
// kernel uses multiple accumulators, because integer addition is
// associative and the reassociation is exact.

// dotKernel is the unrolled float dot product. Single accumulator,
// ascending index order — bit-identical to DotRef.
func dotKernel(a, b []float64) float64 {
	var s float64
	for len(a) >= 4 && len(b) >= 4 {
		s += a[0] * b[0]
		s += a[1] * b[1]
		s += a[2] * b[2]
		s += a[3] * b[3]
		a, b = a[4:], b[4:]
	}
	for len(a) > 0 && len(b) > 0 {
		s += a[0] * b[0]
		a, b = a[1:], b[1:]
	}
	return s
}

// intDotKernel is the unrolled integer dot product. Four independent
// accumulators break the add dependency chain (exact for integers).
func intDotKernel(a, b []uint32) int64 {
	var s0, s1, s2, s3 int64
	for len(a) >= 4 && len(b) >= 4 {
		s0 += int64(a[0]) * int64(b[0])
		s1 += int64(a[1]) * int64(b[1])
		s2 += int64(a[2]) * int64(b[2])
		s3 += int64(a[3]) * int64(b[3])
		a, b = a[4:], b[4:]
	}
	for len(a) > 0 && len(b) > 0 {
		s0 += int64(a[0]) * int64(b[0])
		a, b = a[1:], b[1:]
	}
	return s0 + s1 + s2 + s3
}

// sqNormKernel is the unrolled squared norm. Single accumulator,
// ascending index order — bit-identical to SqNormRef.
func sqNormKernel(a []float64) float64 {
	var s float64
	for len(a) >= 4 {
		s += a[0] * a[0]
		s += a[1] * a[1]
		s += a[2] * a[2]
		s += a[3] * a[3]
		a = a[4:]
	}
	for len(a) > 0 {
		s += a[0] * a[0]
		a = a[1:]
	}
	return s
}
