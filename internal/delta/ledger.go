// Package delta implements the mutable-index subsystem: an LSM-style
// split between the immutable crossbar-resident base index and a small
// host-side delta buffer absorbing inserts, updates and deletes.
//
// ReRAM writes are the scarce resource (§V-C; the UPMEM studies
// arXiv:2207.07886 and arXiv:2205.14647 both identify host→PIM (re)loads
// as the dominant cost), so mutations never touch the crossbars:
// inserted and updated vectors live in host memory as exact floats and
// are brute-force searched into every query's candidate set, while
// deleted and updated rows that still occupy crossbar cells are masked
// by tombstones. A compactor folds the delta back into a freshly
// quantized, freshly programmed base image only when thresholds trip,
// and only if the per-crossbar write-cycle budget tracked by the Ledger
// permits — wear-leveling across tiles and refusing outright when the
// array is exhausted. Queries stay exact and lock-free throughout via
// epoch-based snapshots (see delta.go).
package delta

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrEndurance reports that a compaction (or initial programming) was
// refused because the array does not have enough write budget left on
// free tiles. The store keeps serving from the current epoch; the
// refusal is the enforcement point the endurance property test checks.
var ErrEndurance = errors.New("delta: crossbar write-cycle budget exhausted")

// Ledger is the wear-leveling ledger: per-crossbar-tile write-cycle
// counters against a configured budget. Acquire charges one programming
// cycle to each tile it hands out, always preferring the least-worn free
// tiles, so repeated compactions spread wear across the array instead of
// burning out a hot subset. It is safe for concurrent use.
type Ledger struct {
	mu     sync.Mutex
	budget uint32
	wear   []uint32
	inUse  []bool
}

// NewLedger creates a ledger for tiles crossbar tiles, each allowed
// budget programming cycles. Typical budgets are far below raw cell
// endurance (pim.ReRAMEnduranceWrites ~1e8) because every re-program
// rewrites whole tiles with write-verify pulses; operators set the
// budget to the re-program count they are willing to spend over the
// array's provisioned lifetime.
func NewLedger(tiles int, budget uint32) (*Ledger, error) {
	if tiles <= 0 {
		return nil, fmt.Errorf("delta: ledger needs at least one tile, got %d", tiles)
	}
	if budget == 0 {
		return nil, fmt.Errorf("delta: ledger needs a positive write budget")
	}
	return &Ledger{
		budget: budget,
		wear:   make([]uint32, tiles),
		inUse:  make([]bool, tiles),
	}, nil
}

// Tiles returns the tile count.
func (l *Ledger) Tiles() int { return len(l.wear) }

// Budget returns the per-tile write-cycle budget.
func (l *Ledger) Budget() uint32 { return l.budget }

// Acquire reserves n tiles for a new base image, charging one write
// cycle to each. It picks the least-worn free tiles (ties broken by
// lower tile id) and either succeeds atomically or — when fewer than n
// free tiles have budget remaining — charges nothing and returns
// ErrEndurance.
func (l *Ledger) Acquire(n int) ([]int, error) {
	if n <= 0 {
		return nil, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	free := make([]int, 0, len(l.wear))
	for i := range l.wear {
		if !l.inUse[i] && l.wear[i] < l.budget {
			free = append(free, i)
		}
	}
	if len(free) < n {
		return nil, fmt.Errorf("%w: need %d tiles, %d free with budget", ErrEndurance, n, len(free))
	}
	sort.Slice(free, func(a, b int) bool {
		if l.wear[free[a]] != l.wear[free[b]] {
			return l.wear[free[a]] < l.wear[free[b]]
		}
		return free[a] < free[b]
	})
	picked := append([]int(nil), free[:n]...)
	for _, id := range picked {
		l.wear[id]++
		l.inUse[id] = true
	}
	return picked, nil
}

// Release returns tiles to the free pool once the epoch holding them has
// drained. Wear already charged is never refunded — the cells were
// physically written.
func (l *Ledger) Release(ids []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, id := range ids {
		if id >= 0 && id < len(l.inUse) {
			l.inUse[id] = false
		}
	}
}

// LedgerStats is a point-in-time wear summary.
type LedgerStats struct {
	Tiles     int
	Budget    uint32
	InUse     int
	MaxWear   uint32
	TotalWear uint64
	// Remaining is Σ max(0, budget − wear) over all tiles: the total
	// programming cycles the array can still absorb.
	Remaining uint64
	// Exhausted counts tiles with no budget left.
	Exhausted int
}

// Stats snapshots the ledger.
func (l *Ledger) Stats() LedgerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LedgerStats{Tiles: len(l.wear), Budget: l.budget}
	for i, w := range l.wear {
		if l.inUse[i] {
			st.InUse++
		}
		if w > st.MaxWear {
			st.MaxWear = w
		}
		st.TotalWear += uint64(w)
		if w >= l.budget {
			st.Exhausted++
		} else {
			st.Remaining += uint64(l.budget - w)
		}
	}
	return st
}
