package delta

import "pimmine/internal/obs"

// Metrics holds the obs handles a Store publishes to. Every field is
// optional (nil handles are safe no-ops, matching internal/obs), so the
// zero Metrics keeps the hot path observation-free.
type Metrics struct {
	// DeltaRows and Tombstones track the current fill of the host-side
	// buffer and the dead rows still occupying crossbar cells.
	DeltaRows  *obs.Gauge
	Tombstones *obs.Gauge
	// Compactions and CompactionFailures count finished attempts;
	// CompactionSeconds is the rebuild latency histogram (also the
	// mutation-stall distribution, since the compactor holds the
	// mutation lock for the rebuild).
	Compactions        *obs.Counter
	CompactionFailures *obs.Counter
	CompactionSeconds  *obs.Histogram
	// EnduranceRemaining is the ledger's total write budget left,
	// summed over tiles.
	EnduranceRemaining *obs.Gauge
}

// NewMetrics registers the standard delta metric set on a registry.
// label distinguishes multiple stores (e.g. one per serve shard).
func NewMetrics(reg *obs.Registry, labels ...obs.Label) Metrics {
	if reg == nil {
		return Metrics{}
	}
	return Metrics{
		DeltaRows:  reg.Gauge("pim_delta_rows", "Rows in the host-side delta buffer.", labels...),
		Tombstones: reg.Gauge("pim_delta_tombstones", "Dead rows still occupying crossbar cells.", labels...),
		Compactions: reg.Counter("pim_delta_compactions_total",
			"Compactions that rebuilt and swapped the base image.", labels...),
		CompactionFailures: reg.Counter("pim_delta_compaction_failures_total",
			"Compaction attempts refused (endurance) or failed (factory).", labels...),
		CompactionSeconds: reg.Histogram("pim_delta_compaction_seconds",
			"Wall-clock compaction duration (also the mutation stall).",
			obs.ExpBuckets(1e-4, 4, 10), labels...),
		EnduranceRemaining: reg.Gauge("pim_delta_endurance_remaining",
			"Total crossbar write-cycle budget remaining across ledger tiles.", labels...),
	}
}

// publishGauges refreshes the fill gauges after a snapshot swap.
func (st *Store) publishGauges(sn *snapshot) {
	m := st.opts.Metrics
	m.DeltaRows.Set(int64(len(sn.deltaIDs)))
	m.Tombstones.Set(int64(len(sn.tomb)))
	if st.opts.Ledger != nil {
		m.EnduranceRemaining.Set(int64(st.opts.Ledger.Stats().Remaining))
	}
}

// compactionDone records a successful compaction.
func (m Metrics) compactionDone(seconds float64) {
	m.Compactions.Inc()
	m.CompactionSeconds.Observe(seconds)
}

// compactionFailed records a refused or failed compaction.
func (m Metrics) compactionFailed() {
	m.CompactionFailures.Inc()
}
