package delta

import (
	"fmt"
	"sort"

	"pimmine/internal/vec"
)

// Restore rebuilds a store from a recovered live image: rows in
// ascending global-id order with their id directory (as Materialize
// returns, or a wal.ShardState carries) and the next-id watermark the
// crashed store's owner had reached. The rebuilt epoch re-runs the
// Theorem 4 sizing through buildBase exactly like a compaction, and
// OnCompact fires with the live image so routing summaries come back
// tight.
//
// Searches over the restored store are byte-identical to the crashed
// one's: results depend only on the live row set (ids plus float bits),
// which is exactly what the image carries — compaction timing and
// delta/tombstone split need not be replayed (see the delta
// differential goldens, which prove Search ≡ a fresh engine over
// Materialize()).
//
// An empty image (every row of the shard deleted before the crash) is
// legal: the store is seeded with a single tombstoned placeholder row,
// invisible to every query and mutation, so the shard slot stays
// serviceable until inserts repopulate it and the next compaction
// discards the placeholder.
func Restore(data *vec.Matrix, ids []int, nextID int, opts Options) (*Store, error) {
	if data == nil || data.D == 0 {
		return nil, fmt.Errorf("delta: restore needs a dimensioned matrix")
	}
	if len(ids) != data.N {
		return nil, fmt.Errorf("delta: restore image has %d rows but %d ids", data.N, len(ids))
	}
	if !sort.IntsAreSorted(ids) {
		return nil, fmt.Errorf("delta: restore ids not ascending")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return nil, fmt.Errorf("delta: restore ids contain duplicate %d", ids[i])
		}
	}
	if nextID < 0 || (len(ids) > 0 && nextID <= ids[len(ids)-1]) {
		return nil, fmt.Errorf("delta: restore nextID %d not past the largest live id", nextID)
	}
	if opts.Factory == nil {
		return nil, fmt.Errorf("delta: Options.Factory is required")
	}
	if opts.MaxDelta <= 0 {
		opts.MaxDelta = 256
	}
	if opts.MaxTombstoneRatio <= 0 {
		opts.MaxTombstoneRatio = 0.25
	}
	if opts.VectorsPerObject <= 0 {
		opts.VectorsPerObject = 2
	}
	if opts.CapacityRows <= 0 {
		opts.CapacityRows = data.N
		if opts.CapacityRows == 0 {
			opts.CapacityRows = 1
		}
	}

	live := data
	tomb := map[int]struct{}{}
	baseIDs := append([]int(nil), ids...)
	if data.N == 0 {
		// Tombstoned placeholder: buildBase and the searchers need at
		// least one physical row; the tombstone masks it everywhere
		// (Search, Materialize, Has, Update/Delete addressing).
		data = vec.NewMatrix(1, live.D)
		baseIDs = []int{0}
		tomb[0] = struct{}{}
	}
	st := &Store{opts: opts, d: data.D, nextID: nextID}
	base, err := st.buildBase(data, baseIDs)
	if err != nil {
		return nil, err
	}
	st.snap.Store(&snapshot{epoch: 1, base: base, tomb: tomb})
	st.statsMu.Lock()
	st.stats.Epoch = 1
	st.stats.ChosenS = base.s
	st.statsMu.Unlock()
	st.publishGauges(st.snap.Load())
	if opts.OnCompact != nil && live.N > 0 {
		opts.OnCompact(live)
	}
	return st, nil
}

// Has reports whether id is currently live in the store (delta-resident,
// or base-resident and not tombstoned).
func (st *Store) Has(id int) bool {
	if st.closed.Load() {
		return false
	}
	sn := st.pin()
	defer sn.base.unref()
	if pos := sort.SearchInts(sn.deltaIDs, id); pos < len(sn.deltaIDs) && sn.deltaIDs[pos] == id {
		return true
	}
	if sn.base.localOf(id) >= 0 {
		_, dead := sn.tomb[id]
		return !dead
	}
	return false
}

// NextID returns the id the next self-assigned Insert would take — the
// watermark a durable engine snapshots so recovery never reuses an id.
func (st *Store) NextID() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nextID
}
