package delta

import (
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/knn"
)

// Stats is a point-in-time summary of the store.
type Stats struct {
	Epoch      uint64
	BaseRows   int // rows occupying crossbar cells (incl. tombstoned)
	DeltaRows  int
	Tombstones int
	LiveRows   int
	// ChosenS is the Theorem 4 compressed dimensionality of the current
	// base image (0 for host-only factories).
	ChosenS int
	// Compactions / CompactionFailures count finished compaction
	// attempts; LastCompactionS and MaxPauseS time the mutation stall
	// each one caused.
	Compactions        int
	CompactionFailures int
	LastCompactionS    float64
	MaxPauseS          float64
	// Endurance is the wear-leveling ledger snapshot, nil when the store
	// runs without endurance metering.
	Endurance *LedgerStats
}

// Stats snapshots the store's counters. It does not take the mutation
// lock, so it stays responsive mid-compaction.
func (st *Store) Stats() Stats {
	sn := st.snap.Load()
	st.statsMu.Lock()
	out := st.stats
	st.statsMu.Unlock()
	out.Epoch = sn.epoch
	out.BaseRows = len(sn.base.ids)
	out.DeltaRows = len(sn.deltaIDs)
	out.Tombstones = len(sn.tomb)
	out.LiveRows = out.BaseRows - out.Tombstones + out.DeltaRows
	out.ChosenS = sn.base.s
	if st.opts.Ledger != nil {
		ls := st.opts.Ledger.Stats()
		out.Endurance = &ls
	}
	return out
}

// NeedsCompaction reports whether any compaction trigger has tripped:
// delta fill, tombstone ratio, or modeled per-query delta cost.
func (st *Store) NeedsCompaction() bool {
	return st.needsCompaction(st.snap.Load())
}

func (st *Store) needsCompaction(sn *snapshot) bool {
	if len(sn.deltaIDs) >= st.opts.MaxDelta {
		return true
	}
	if n := len(sn.base.ids); n > 0 &&
		float64(len(sn.tomb)) > st.opts.MaxTombstoneRatio*float64(n) {
		return true
	}
	if st.opts.MaxQueryCost > 0 &&
		knn.DeltaCost(len(sn.deltaIDs), st.d, len(sn.tomb)) > st.opts.MaxQueryCost {
		return true
	}
	return false
}

// maybeCompact starts one background compaction when AutoCompact is on
// and a trigger has tripped. At most one runs at a time; mutations keep
// landing (they stall only for the final swap... in this implementation
// the compactor holds the mutation lock for the whole rebuild, so the
// stall IS the rebuild — the churn benchmark reports it as the
// compaction pause).
func (st *Store) maybeCompact() {
	if !st.opts.AutoCompact || st.closed.Load() || !st.needsCompaction(st.snap.Load()) {
		return
	}
	if !st.compacting.CompareAndSwap(false, true) {
		return
	}
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		defer st.compacting.Store(false)
		_ = st.Compact(nil) // failure keeps serving the old epoch; counted in stats
	}()
}

// Compact folds tombstones and the delta buffer into a freshly
// quantized, freshly programmed base image:
//
//  1. materialize the live rows (base minus tombstones, merged with the
//     delta in ascending id order),
//  2. re-run Theorem 4's dimension selection against the new occupancy
//     and price the image in crossbar tiles,
//  3. acquire least-worn tiles from the wear-leveling ledger — refusing
//     with ErrEndurance when the write budget is spent,
//  4. build the new searcher and atomically swap the snapshot,
//  5. retire the old epoch; its tiles free once the last pinned reader
//     drains.
//
// Queries never block: they either hold the old epoch (still fully
// resident) or pick up the new one. A nil meter is allowed; otherwise
// the modeled re-programming cost is recorded by searchers implementing
// knn.Preprocessor.
func (st *Store) Compact(meter *arch.Meter) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed.Load() {
		return ErrClosed
	}
	sn := st.snap.Load()
	if len(sn.deltaIDs) == 0 && len(sn.tomb) == 0 {
		return nil // already compact
	}
	start := time.Now()
	data, ids := materialize(sn, st.d)
	if data.N == 0 {
		return ErrAllDeleted
	}
	base, err := st.buildBase(data, ids)
	elapsed := time.Since(start).Seconds()
	if err != nil {
		st.opts.Metrics.compactionFailed()
		st.statsMu.Lock()
		st.stats.CompactionFailures++
		st.statsMu.Unlock()
		return err
	}
	if meter != nil {
		if p, ok := base.searcher.(knn.Preprocessor); ok {
			p.RecordPreprocessing(meter)
		}
	}
	old := sn.base
	st.newSnap(base, nil, nil, nil)
	old.retire()
	st.statsMu.Lock()
	st.stats.Compactions++
	st.stats.LastCompactionS = elapsed
	if elapsed > st.stats.MaxPauseS {
		st.stats.MaxPauseS = elapsed
	}
	st.stats.ChosenS = base.s
	st.statsMu.Unlock()
	st.opts.Metrics.compactionDone(elapsed)
	if st.opts.OnCompact != nil {
		st.opts.OnCompact(data)
	}
	return nil
}
