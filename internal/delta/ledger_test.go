package delta

import (
	"errors"
	"testing"
)

func TestLedgerAcquireRelease(t *testing.T) {
	t.Parallel()
	l, err := NewLedger(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.Acquire(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("got %d tiles", len(a))
	}
	if _, err := l.Acquire(2); !errors.Is(err, ErrEndurance) {
		t.Fatalf("over-acquire err = %v, want ErrEndurance", err)
	}
	l.Release(a)
	st := l.Stats()
	if st.InUse != 0 || st.TotalWear != 3 || st.MaxWear != 1 {
		t.Fatalf("stats after release = %+v", st)
	}
	// Remaining = 4 tiles × budget 2 − 3 writes.
	if st.Remaining != 5 {
		t.Fatalf("remaining = %d, want 5", st.Remaining)
	}
}

func TestLedgerWearLeveling(t *testing.T) {
	t.Parallel()
	l, err := NewLedger(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle acquire/release of 2 tiles; wear must stay balanced within 1
	// because Acquire always prefers the least-worn tiles.
	for i := 0; i < 20; i++ {
		a, err := l.Acquire(2)
		if err != nil {
			t.Fatal(err)
		}
		l.Release(a)
	}
	st := l.Stats()
	if st.TotalWear != 40 {
		t.Fatalf("total wear = %d, want 40", st.TotalWear)
	}
	if st.MaxWear != 10 {
		t.Fatalf("max wear = %d, want 10 (40 writes over 4 tiles)", st.MaxWear)
	}
}

func TestLedgerBudgetNeverExceeded(t *testing.T) {
	t.Parallel()
	const tiles, budget = 5, 3
	l, err := NewLedger(tiles, budget)
	if err != nil {
		t.Fatal(err)
	}
	granted := 0
	var held [][]int
	for i := 0; ; i++ {
		a, err := l.Acquire(1 + i%3)
		if err != nil {
			if !errors.Is(err, ErrEndurance) {
				t.Fatal(err)
			}
			if len(held) == 0 {
				break
			}
			l.Release(held[0])
			held = held[1:]
			continue
		}
		granted += len(a)
		held = append(held, a)
		if s := l.Stats(); s.MaxWear > budget {
			t.Fatalf("wear %d exceeds budget %d", s.MaxWear, budget)
		}
	}
	if granted != tiles*budget {
		t.Fatalf("granted %d programmings, want exactly %d", granted, tiles*budget)
	}
	if s := l.Stats(); s.Remaining != 0 || s.Exhausted != tiles {
		t.Fatalf("final stats %+v", s)
	}
}

func TestLedgerValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewLedger(0, 1); err == nil {
		t.Fatal("zero tiles accepted")
	}
	if _, err := NewLedger(3, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	l, _ := NewLedger(3, 1)
	if tiles, err := l.Acquire(0); err != nil || tiles != nil {
		t.Fatalf("Acquire(0) = %v, %v", tiles, err)
	}
}
