package delta

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"pimmine/internal/arch"
	"pimmine/internal/bound"
	"pimmine/internal/knn"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// Sentinel errors returned by Store operations.
var (
	// ErrClosed reports an operation on a closed store.
	ErrClosed = fmt.Errorf("delta: store closed")
	// ErrNotFound reports a mutation addressing an id that does not
	// exist (never assigned, or already deleted).
	ErrNotFound = fmt.Errorf("delta: id not found")
	// ErrAllDeleted reports a compaction that would produce an empty
	// base image; the store keeps serving from the tombstoned base.
	ErrAllDeleted = fmt.Errorf("delta: refusing to compact to an empty dataset")
)

// Factory builds the base searcher over a compacted matrix. capacityN is
// the Theorem 4 sizing cardinality for PIM factories (each rebuild
// re-runs ChooseS against it, so the compressed dimensionality adapts
// when occupancy changes); host factories may ignore it. A fresh
// pim.Engine must be created per call — re-programming an existing
// payload name is rejected by the engine precisely because it burns
// endurance outside the ledger's accounting.
type Factory func(base *vec.Matrix, capacityN int) (knn.Searcher, error)

// Options configures New.
type Options struct {
	// Factory builds per-epoch base searchers. Required.
	Factory Factory
	// MaxDelta triggers compaction when the delta buffer reaches this
	// many rows (default 256). The delta is brute-force scanned per
	// query, so this bounds both query overhead and the cost of the
	// copy-on-write snapshots mutations publish.
	MaxDelta int
	// MaxTombstoneRatio triggers compaction when tombstones exceed this
	// fraction of base rows (default 0.25): dead rows still burn base
	// search work because queries over-fetch k+tombstones candidates.
	MaxTombstoneRatio float64
	// MaxQueryCost triggers compaction when knn.DeltaCost's modeled
	// per-query overhead of the delta+tombstones exceeds this value
	// (0 disables the cost trigger).
	MaxQueryCost float64
	// Ledger, when non-nil, meters programming cycles: every compaction
	// (and the initial build) must acquire tiles for the new image and
	// is refused with ErrEndurance when the array is spent.
	Ledger *Ledger
	// Model, when non-nil, prices a base image in crossbar tiles
	// (Theorem 4) for the ledger and records the chosen compressed
	// dimensionality in Stats. Required if Ledger is set alongside a
	// PIM factory; when nil, each image is charged a single tile.
	Model *pim.CapacityModel
	// VectorsPerObject is Theorem 4's payload replication factor
	// (default 2, the µ and σ payloads of LB_PIM-FNN).
	VectorsPerObject int
	// CapacityRows floors the Theorem 4 sizing cardinality so the
	// compressed dimensionality does not thrash when occupancy
	// fluctuates (default: the initial dataset's N).
	CapacityRows int
	// AutoCompact runs compaction in a background goroutine when a
	// threshold trips; otherwise callers compact explicitly.
	AutoCompact bool
	// IDOffset shifts the initial rows' ids to offset..offset+N-1
	// (default 0). Sharded engines use contiguous offsets so every
	// store answers directly in the global id space.
	IDOffset int
	// Metrics, when wired (see NewMetrics), publishes delta fill,
	// tombstone count, compaction counters/latency and remaining
	// endurance budget to an obs registry.
	Metrics Metrics
	// OnCompact, when non-nil, is invoked at the end of every successful
	// compaction with the freshly materialized live base image (rows in
	// ascending global-id order), while the store's mutation lock is
	// still held — so no insert can interleave between the snapshot swap
	// and the callback. The routing tier (internal/route) uses it to
	// rebuild the owning shard's summary tight; between compactions,
	// inserts keep summaries conservative instead. The callback must not
	// mutate the matrix or call back into the store.
	OnCompact func(base *vec.Matrix)
	// OnMutate, when non-nil, is invoked with every inserted or updated
	// vector while the mutation lock is held, *before* the row becomes
	// visible to queries. Paired with OnCompact (also under the lock),
	// it gives the routing tier a total order of summary maintenance
	// against compaction: a summary expansion can never be lost to a
	// concurrent tight rebuild, so the published summary always covers
	// every row the published snapshot holds. The callback must not call
	// back into the store.
	OnMutate func(v []float64)
}

// baseIndex is one epoch's immutable crossbar-resident index: the
// compacted matrix, its ascending global-id directory, and the searcher
// built over it. The searcher reuses internal buffers, so searches
// serialize on mu (queries still pipeline: the delta scan and merge run
// outside the lock, and compaction never takes it — a new epoch gets a
// new baseIndex).
type baseIndex struct {
	data *vec.Matrix
	ids  []int // ascending; ids[local] = global id
	s    int   // Theorem 4 compressed dimensionality (0 = host/unknown)

	mu       sync.Mutex
	searcher knn.Searcher

	ledger *Ledger
	tiles  []int

	refs     atomic.Int64 // pinned readers
	retired  atomic.Bool  // no longer the live epoch
	released atomic.Bool  // tiles handed back (exactly once)
}

// unref drops a reader pin; the last reader of a retired epoch returns
// its tiles to the ledger.
func (b *baseIndex) unref() {
	if b.refs.Add(-1) == 0 && b.retired.Load() {
		b.release()
	}
}

// retire marks the epoch dead (called after the snapshot swap). If no
// reader holds it, its tiles free immediately; otherwise the last unref
// does it.
func (b *baseIndex) retire() {
	b.retired.Store(true)
	if b.refs.Load() == 0 {
		b.release()
	}
}

// release frees the tiles exactly once (retire and unref can race; the
// CAS picks a single winner).
func (b *baseIndex) release() {
	if b.released.CompareAndSwap(false, true) && b.ledger != nil {
		b.ledger.Release(b.tiles)
	}
}

// localOf returns the base-local row of a global id, or -1.
func (b *baseIndex) localOf(id int) int {
	i := sort.SearchInts(b.ids, id)
	if i < len(b.ids) && b.ids[i] == id {
		return i
	}
	return -1
}

// snapshot is one immutable epoch view: the base index, the tombstone
// set masking dead base rows, and the delta buffer (rows in ascending
// global-id order, so scan order equals id order and the merge's
// (dist, id) tie handling is exact — see knn.DeltaScan). Mutations
// publish a fresh snapshot via copy-on-write of the small parts; readers
// pin one pointer and never observe a half-applied mutation.
type snapshot struct {
	epoch    uint64
	base     *baseIndex
	tomb     map[int]struct{}
	delta    *vec.Matrix // nil when empty
	deltaIDs []int       // ascending; deltaIDs[local] = global id
	deltaOST *bound.OSTIndex
}

// Store is the mutable index. Queries (Search) are lock-free against
// mutations and compaction: they pin the current snapshot and only take
// the short per-epoch searcher mutex. Mutations and compaction serialize
// on an internal mutex; a mutation arriving mid-compaction stalls until
// the swap — that write stall is the "compaction pause" the churn
// benchmark reports.
type Store struct {
	opts Options
	d    int

	mu     sync.Mutex // serializes mutations and compaction
	nextID int
	snap   atomic.Pointer[snapshot]

	closed     atomic.Bool
	compacting atomic.Bool
	wg         sync.WaitGroup // background compactions in flight

	statsMu sync.Mutex
	stats   Stats
}

// New builds a store over an initial dataset, programming the first base
// image (ids 0..N-1). The matrix is retained as the epoch-0 base and
// must not be modified by the caller afterwards.
func New(data *vec.Matrix, opts Options) (*Store, error) {
	if data == nil || data.N == 0 || data.D == 0 {
		return nil, fmt.Errorf("delta: empty dataset")
	}
	if opts.Factory == nil {
		return nil, fmt.Errorf("delta: Options.Factory is required")
	}
	if opts.MaxDelta <= 0 {
		opts.MaxDelta = 256
	}
	if opts.MaxTombstoneRatio <= 0 {
		opts.MaxTombstoneRatio = 0.25
	}
	if opts.VectorsPerObject <= 0 {
		opts.VectorsPerObject = 2
	}
	if opts.CapacityRows <= 0 {
		opts.CapacityRows = data.N
	}
	if opts.IDOffset < 0 {
		return nil, fmt.Errorf("delta: negative IDOffset %d", opts.IDOffset)
	}
	st := &Store{opts: opts, d: data.D, nextID: opts.IDOffset + data.N}
	base, err := st.buildBase(data, identityIDs(opts.IDOffset, data.N))
	if err != nil {
		return nil, err
	}
	st.snap.Store(&snapshot{epoch: 1, base: base})
	st.statsMu.Lock()
	st.stats.Epoch = 1
	st.stats.ChosenS = base.s
	st.statsMu.Unlock()
	st.publishGauges(st.snap.Load())
	return st, nil
}

func identityIDs(offset, n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = offset + i
	}
	return ids
}

// buildBase prices, reserves endurance for, and constructs one epoch's
// base index. On any failure the reserved tiles are returned unworn-free
// (the wear itself is spent — Acquire models the physical write).
func (st *Store) buildBase(data *vec.Matrix, ids []int) (*baseIndex, error) {
	capacityN := st.opts.CapacityRows
	if data.N > capacityN {
		capacityN = data.N
	}
	chosenS := 0
	demand := 0
	if st.opts.Model != nil {
		chosenS = st.opts.Model.ChooseS(capacityN, pim.Divisors(st.d), st.opts.VectorsPerObject)
		if chosenS == 0 {
			return nil, fmt.Errorf("delta: %d vectors of %d dims do not fit the PIM array at any compressed dimensionality", capacityN, st.d)
		}
		nd, ng := st.opts.Model.Cost(data.N, chosenS)
		demand = st.opts.VectorsPerObject * int(nd+ng)
		if demand == 0 {
			demand = 1
		}
	} else if st.opts.Ledger != nil {
		demand = 1 // whole image charged as one batch without a price model
	}
	var tiles []int
	if st.opts.Ledger != nil {
		var err error
		tiles, err = st.opts.Ledger.Acquire(demand)
		if err != nil {
			return nil, err
		}
	}
	searcher, err := st.opts.Factory(data, capacityN)
	if err != nil {
		if st.opts.Ledger != nil {
			st.opts.Ledger.Release(tiles)
		}
		return nil, fmt.Errorf("delta: building base searcher: %w", err)
	}
	return &baseIndex{
		data: data, ids: ids, s: chosenS,
		searcher: searcher,
		ledger:   st.opts.Ledger, tiles: tiles,
	}, nil
}

// pin returns the current snapshot with its base refcounted. The double
// check makes the pin race-free against a concurrent swap: if the
// snapshot changed between load and ref, the ref may have landed on an
// already-released epoch, so drop it and retry.
func (st *Store) pin() *snapshot {
	for {
		sn := st.snap.Load()
		sn.base.refs.Add(1)
		if st.snap.Load() == sn {
			return sn
		}
		sn.base.unref()
	}
}

// newSnap assembles and publishes a successor snapshot. Callers hold
// st.mu. deltaIDs must be ascending and rows must match ids positionally.
func (st *Store) newSnap(base *baseIndex, tomb map[int]struct{}, delta *vec.Matrix, deltaIDs []int) {
	sn := &snapshot{
		epoch: st.snap.Load().epoch + 1,
		base:  base, tomb: tomb,
		delta: delta, deltaIDs: deltaIDs,
	}
	if delta != nil && delta.N > 0 && st.d >= 2 {
		// LB_OST over the delta with the half-split head: the same
		// prefilter the host OST variant uses, built in O(delta).
		ix, err := bound.BuildOST(delta, st.d/2)
		if err == nil {
			sn.deltaOST = ix
		}
	}
	st.snap.Store(sn)
	st.publishGauges(sn)
}

// cloneTomb copies the tombstone set for copy-on-write publication.
func cloneTomb(t map[int]struct{}) map[int]struct{} {
	out := make(map[int]struct{}, len(t)+1)
	for id := range t {
		out[id] = struct{}{}
	}
	return out
}

// cloneDeltaInsert copies the delta with row (id, v) spliced in at its
// sorted position. v must have st.d dims.
func (st *Store) cloneDeltaInsert(sn *snapshot, id int, v []float64) (*vec.Matrix, []int) {
	n := len(sn.deltaIDs)
	pos := sort.SearchInts(sn.deltaIDs, id)
	ids := make([]int, 0, n+1)
	ids = append(ids, sn.deltaIDs[:pos]...)
	ids = append(ids, id)
	ids = append(ids, sn.deltaIDs[pos:]...)
	m := vec.NewMatrix(n+1, st.d)
	if sn.delta != nil {
		copy(m.Data[:pos*st.d], sn.delta.Data[:pos*st.d])
		copy(m.Data[(pos+1)*st.d:], sn.delta.Data[pos*st.d:])
	}
	copy(m.Row(pos), v)
	return m, ids
}

// cloneDeltaWithout copies the delta with the row at position pos
// removed; returns (nil, nil) when it was the last row.
func (st *Store) cloneDeltaWithout(sn *snapshot, pos int) (*vec.Matrix, []int) {
	n := len(sn.deltaIDs)
	if n == 1 {
		return nil, nil
	}
	ids := make([]int, 0, n-1)
	ids = append(ids, sn.deltaIDs[:pos]...)
	ids = append(ids, sn.deltaIDs[pos+1:]...)
	m := vec.NewMatrix(n-1, st.d)
	copy(m.Data[:pos*st.d], sn.delta.Data[:pos*st.d])
	copy(m.Data[pos*st.d:], sn.delta.Data[(pos+1)*st.d:])
	return m, ids
}

// cloneDeltaReplace copies the delta with row pos overwritten by v.
func (st *Store) cloneDeltaReplace(sn *snapshot, pos int, v []float64) (*vec.Matrix, []int) {
	m := sn.delta.Clone()
	copy(m.Row(pos), v)
	return m, sn.deltaIDs // ids unchanged; slice is immutable once published
}

// Insert adds a vector and returns its id. Ids are assigned
// monotonically, so insertion order is the (dist, id) tiebreak order —
// a freshly built engine over Materialize() resolves ties identically.
// The vector must be normalized ([0,1], finite); violations return
// quant.ErrNotFinite / quant.ErrOutOfRange.
func (st *Store) Insert(v []float64) (int, error) {
	return st.insert(-1, v)
}

// InsertAt inserts with a caller-assigned id, which must be at least as
// large as every id the store has ever assigned plus one — sharded
// engines that own a global id space allocate monotonically and route
// rows here, keeping every store's id order (and so its tie order)
// aligned with the global one.
func (st *Store) InsertAt(id int, v []float64) error {
	if id < 0 {
		return fmt.Errorf("delta: negative id %d", id)
	}
	_, err := st.insert(id, v)
	return err
}

func (st *Store) insert(forcedID int, v []float64) (int, error) {
	if len(v) != st.d {
		return 0, fmt.Errorf("delta: vector has %d dims, store has %d", len(v), st.d)
	}
	if err := quant.CheckVec(v); err != nil {
		return 0, fmt.Errorf("delta: insert: %w", err)
	}
	st.mu.Lock()
	if st.closed.Load() {
		st.mu.Unlock()
		return 0, ErrClosed
	}
	sn := st.snap.Load()
	id := forcedID
	if id < 0 {
		id = st.nextID
	} else if id < st.nextID {
		st.mu.Unlock()
		return 0, fmt.Errorf("delta: id %d not monotone (next is %d)", id, st.nextID)
	}
	st.nextID = id + 1
	delta, ids := st.cloneDeltaInsert(sn, id, v)
	if st.opts.OnMutate != nil {
		st.opts.OnMutate(v)
	}
	st.newSnap(sn.base, sn.tomb, delta, ids)
	st.mu.Unlock()
	st.maybeCompact()
	return id, nil
}

// Update replaces the vector of an existing id, keeping the id (and with
// it the tie order). A base-resident row is tombstoned and shadowed by a
// delta row under the same id; a delta-resident row is rewritten in
// place.
func (st *Store) Update(id int, v []float64) error {
	if len(v) != st.d {
		return fmt.Errorf("delta: vector has %d dims, store has %d", len(v), st.d)
	}
	if err := quant.CheckVec(v); err != nil {
		return fmt.Errorf("delta: update: %w", err)
	}
	st.mu.Lock()
	if st.closed.Load() {
		st.mu.Unlock()
		return ErrClosed
	}
	sn := st.snap.Load()
	if pos := sort.SearchInts(sn.deltaIDs, id); pos < len(sn.deltaIDs) && sn.deltaIDs[pos] == id {
		delta, ids := st.cloneDeltaReplace(sn, pos, v)
		if st.opts.OnMutate != nil {
			st.opts.OnMutate(v)
		}
		st.newSnap(sn.base, sn.tomb, delta, ids)
		st.mu.Unlock()
		st.maybeCompact()
		return nil
	}
	if local := sn.base.localOf(id); local >= 0 {
		if _, dead := sn.tomb[id]; !dead {
			tomb := cloneTomb(sn.tomb)
			tomb[id] = struct{}{}
			delta, ids := st.cloneDeltaInsert(sn, id, v)
			if st.opts.OnMutate != nil {
				st.opts.OnMutate(v)
			}
			st.newSnap(sn.base, tomb, delta, ids)
			st.mu.Unlock()
			st.maybeCompact()
			return nil
		}
	}
	st.mu.Unlock()
	return fmt.Errorf("%w: %d", ErrNotFound, id)
}

// Delete removes an id: a delta row is dropped, a live base row is
// tombstoned (its crossbar cells stay programmed until compaction).
func (st *Store) Delete(id int) error {
	st.mu.Lock()
	if st.closed.Load() {
		st.mu.Unlock()
		return ErrClosed
	}
	sn := st.snap.Load()
	if pos := sort.SearchInts(sn.deltaIDs, id); pos < len(sn.deltaIDs) && sn.deltaIDs[pos] == id {
		delta, ids := st.cloneDeltaWithout(sn, pos)
		st.newSnap(sn.base, sn.tomb, delta, ids)
		st.mu.Unlock()
		st.maybeCompact()
		return nil
	}
	if local := sn.base.localOf(id); local >= 0 {
		if _, dead := sn.tomb[id]; !dead {
			tomb := cloneTomb(sn.tomb)
			tomb[id] = struct{}{}
			st.newSnap(sn.base, tomb, sn.delta, sn.deltaIDs)
			st.mu.Unlock()
			st.maybeCompact()
			return nil
		}
	}
	st.mu.Unlock()
	return fmt.Errorf("%w: %d", ErrNotFound, id)
}

// Search answers one exact kNN query against the live rows (base minus
// tombstones, plus delta), returning global ids in canonical
// (dist, id) order — byte-identical to a fresh index built over
// Materialize(). It never blocks on mutations or compaction.
//
// Exactness: the base searcher over-fetches k+|tombstones| candidates,
// so after masking, the k best live base rows survive (at most
// |tombstones| dead rows can precede them); the delta scan is capped by
// the base k-th distance with a strict prune, so tied delta rows still
// compete; and both partial results are canonical under (dist, id), so
// vec.MergeNeighbors loses nothing.
func (st *Store) Search(q []float64, k int, meter *arch.Meter) ([]vec.Neighbor, error) {
	if st.closed.Load() {
		return nil, ErrClosed
	}
	if len(q) != st.d {
		return nil, fmt.Errorf("delta: query has %d dims, store has %d", len(q), st.d)
	}
	if k <= 0 {
		return nil, fmt.Errorf("delta: need k >= 1, got %d", k)
	}
	if meter == nil {
		meter = arch.NewMeter() // searchers require one; discard the activity
	}
	sn := st.pin()
	defer sn.base.unref()

	kb := k + len(sn.tomb)
	sn.base.mu.Lock()
	baseRaw := sn.base.searcher.Search(q, kb, meter)
	sn.base.mu.Unlock()
	baseNN := make([]vec.Neighbor, 0, k)
	for _, nb := range baseRaw {
		gid := sn.base.ids[nb.Index]
		if _, dead := sn.tomb[gid]; dead {
			continue
		}
		baseNN = append(baseNN, vec.Neighbor{Index: gid, Dist: nb.Dist})
		if len(baseNN) == k {
			break
		}
	}
	if len(sn.deltaIDs) == 0 {
		return baseNN, nil
	}
	cap := math.Inf(1)
	if len(baseNN) >= k {
		cap = baseNN[k-1].Dist
	}
	deltaNN := knn.DeltaScan(sn.delta, sn.deltaOST, q, k, cap, meter)
	for i := range deltaNN {
		deltaNN[i].Index = sn.deltaIDs[deltaNN[i].Index]
	}
	return vec.MergeNeighbors(k, baseNN, deltaNN), nil
}

// Materialize returns the live rows in ascending id order plus their
// ids: the dataset an equivalent fresh index would be built from. The
// copy is taken against one pinned snapshot.
func (st *Store) Materialize() (*vec.Matrix, []int) {
	sn := st.pin()
	defer sn.base.unref()
	return materialize(sn, st.d)
}

// materialize merges live base rows and delta rows by ascending id.
func materialize(sn *snapshot, d int) (*vec.Matrix, []int) {
	ids := make([]int, 0, len(sn.base.ids)+len(sn.deltaIDs))
	rows := make([][]float64, 0, cap(ids))
	bi, di := 0, 0
	for bi < len(sn.base.ids) || di < len(sn.deltaIDs) {
		takeBase := di >= len(sn.deltaIDs) ||
			(bi < len(sn.base.ids) && sn.base.ids[bi] < sn.deltaIDs[di])
		if takeBase {
			gid := sn.base.ids[bi]
			if _, dead := sn.tomb[gid]; !dead {
				ids = append(ids, gid)
				rows = append(rows, sn.base.data.Row(bi))
			}
			bi++
			continue
		}
		ids = append(ids, sn.deltaIDs[di])
		rows = append(rows, sn.delta.Row(di))
		di++
	}
	m := vec.NewMatrix(len(ids), d)
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m, ids
}

// Epoch returns the current snapshot epoch (bumped by every mutation and
// compaction).
func (st *Store) Epoch() uint64 { return st.snap.Load().epoch }

// Close shuts the store down idempotently: further operations return
// ErrClosed, and Close waits for any background compaction to finish.
func (st *Store) Close() {
	if st.closed.Swap(true) {
		st.wg.Wait() // concurrent Close also waits for quiescence
		return
	}
	st.wg.Wait()
}
