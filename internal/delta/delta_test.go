package delta

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/knn"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// hostFactory is the simplest exact base searcher.
func hostFactory(m *vec.Matrix, _ int) (knn.Searcher, error) {
	return knn.NewStandard(m), nil
}

func randMatrix(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

// refSearch is the oracle: an exact canonical scan over the store's
// materialized live rows under their global ids.
func refSearch(st *Store, q []float64, k int) []vec.Neighbor {
	m, ids := st.Materialize()
	top := vec.NewTopK(k)
	for i := 0; i < m.N; i++ {
		top.Push(ids[i], sqDist(m.Row(i), q))
	}
	return top.Results()
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func assertSameNeighbors(t *testing.T, got, want []vec.Neighbor, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d neighbors, want %d\ngot  %v\nwant %v", ctx, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: neighbor %d = %+v, want %+v\ngot  %v\nwant %v", ctx, i, got[i], want[i], got, want)
		}
	}
}

func TestStoreMutationsAndExactSearch(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	st, err := New(randMatrix(rng, 40, 6), Options{Factory: hostFactory, MaxDelta: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	live := map[int]bool{}
	for i := 0; i < 40; i++ {
		live[i] = true
	}
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(4); {
		case op == 0: // insert
			id, err := st.Insert(randVec(rng, 6))
			if err != nil {
				t.Fatal(err)
			}
			if live[id] {
				t.Fatalf("id %d reused", id)
			}
			live[id] = true
		case op == 1 && len(live) > 1: // delete
			id := anyKey(rng, live)
			if err := st.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(live, id)
			if err := st.Delete(id); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete err = %v", err)
			}
		case op == 2 && len(live) > 0: // update
			id := anyKey(rng, live)
			if err := st.Update(id, randVec(rng, 6)); err != nil {
				t.Fatal(err)
			}
		}
		if step%20 != 0 {
			continue
		}
		q := randVec(rng, 6)
		k := 1 + rng.Intn(8)
		got, err := st.Search(q, k, arch.NewMeter())
		if err != nil {
			t.Fatal(err)
		}
		assertSameNeighbors(t, got, refSearch(st, q, k), "mid-churn")
	}
	m, ids := st.Materialize()
	if m.N != len(live) || len(ids) != len(live) {
		t.Fatalf("materialized %d rows, want %d", m.N, len(live))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("materialized ids not strictly ascending")
		}
	}
}

// anyKey picks a uniform random member; the sort makes the pick
// deterministic for a seeded rng despite Go's randomized map order.
func anyKey(rng *rand.Rand, set map[int]bool) int {
	keys := make([]int, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys[rng.Intn(len(keys))]
}

func TestStoreUpdateKeepsTieOrder(t *testing.T) {
	t.Parallel()
	// Two identical rows: ties must resolve by id. After updating row 0
	// (moving it into the delta under the SAME id), a query equidistant
	// to both still ranks id 0 first.
	m := vec.NewMatrix(3, 2)
	copy(m.Data, []float64{0.5, 0.5, 0.5, 0.5, 0.9, 0.9})
	st, err := New(m, Options{Factory: hostFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Update(0, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	got, err := st.Search([]float64{0.5, 0.5}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []vec.Neighbor{{Index: 0, Dist: 0}, {Index: 1, Dist: 0}}
	assertSameNeighbors(t, got, want, "tie after update")
}

func TestStoreValidation(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	st, err := New(randMatrix(rng, 5, 3), Options{Factory: hostFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Insert([]float64{0.1, 0.2}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := st.Insert([]float64{0.1, 0.2, 1.5}); !errors.Is(err, quant.ErrOutOfRange) {
		t.Fatalf("out-of-range insert err = %v", err)
	}
	if _, err := st.Insert([]float64{0.1, math.NaN(), 0.3}); !errors.Is(err, quant.ErrNotFinite) {
		t.Fatalf("NaN insert err = %v", err)
	}
	if err := st.Update(99, []float64{0.1, 0.2, 0.3}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing err = %v", err)
	}
	if err := st.Delete(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing err = %v", err)
	}
	if _, err := st.Search([]float64{0.1}, 1, nil); err == nil {
		t.Fatal("query dim mismatch accepted")
	}
	if _, err := st.Search([]float64{0.1, 0.2, 0.3}, 0, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestStoreCloseIdempotent(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	st, err := New(randMatrix(rng, 5, 3), Options{Factory: hostFactory})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	st.Close()
	if _, err := st.Insert([]float64{0.1, 0.2, 0.3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close err = %v", err)
	}
	if err := st.Delete(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("delete after close err = %v", err)
	}
	if _, err := st.Search([]float64{0.1, 0.2, 0.3}, 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("search after close err = %v", err)
	}
	if err := st.Compact(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close err = %v", err)
	}
}

func TestStoreEpochAdvances(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(4))
	st, err := New(randMatrix(rng, 5, 3), Options{Factory: hostFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	e0 := st.Epoch()
	if _, err := st.Insert(randVec(rng, 3)); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != e0+1 {
		t.Fatalf("epoch %d after insert, want %d", st.Epoch(), e0+1)
	}
	if err := st.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != e0+2 {
		t.Fatalf("epoch %d after compact, want %d", st.Epoch(), e0+2)
	}
	// A compact with nothing to fold is a no-op.
	if err := st.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != e0+2 {
		t.Fatalf("no-op compact bumped epoch to %d", st.Epoch())
	}
}
