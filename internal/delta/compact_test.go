package delta

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/obs"
	"pimmine/internal/pim"
)

// testModel is a small Theorem 4 model so tile pricing is a handful of
// crossbars, not thousands.
func testModel() *pim.CapacityModel {
	return &pim.CapacityModel{
		M: 64, CellBits: 2, OperandBits: 32,
		Crossbars: 4096, Utilization: 0.5,
	}
}

func TestCompactFoldsDeltaAndTombstones(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(10))
	st, err := New(randMatrix(rng, 30, 4), Options{Factory: hostFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 10; i++ {
		if _, err := st.Insert(randVec(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 5; id++ {
		if err := st.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Update(7, randVec(rng, 4)); err != nil {
		t.Fatal(err)
	}
	wantM, wantIDs := st.Materialize()
	q := randVec(rng, 4)
	before, err := st.Search(q, 9, nil)
	if err != nil {
		t.Fatal(err)
	}

	if err := st.Compact(arch.NewMeter()); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.DeltaRows != 0 || s.Tombstones != 0 {
		t.Fatalf("post-compact stats %+v", s)
	}
	if s.Compactions != 1 {
		t.Fatalf("compactions = %d", s.Compactions)
	}
	gotM, gotIDs := st.Materialize()
	if gotM.N != wantM.N {
		t.Fatalf("row count changed: %d -> %d", wantM.N, gotM.N)
	}
	for i := range gotIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("ids changed at %d: %d != %d", i, gotIDs[i], wantIDs[i])
		}
	}
	for i := range gotM.Data {
		if gotM.Data[i] != wantM.Data[i] {
			t.Fatalf("data changed at %d", i)
		}
	}
	after, err := st.Search(q, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameNeighbors(t, after, before, "across compaction")
}

func TestCompactRefusesEmpty(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	st, err := New(randMatrix(rng, 3, 2), Options{Factory: hostFactory})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for id := 0; id < 3; id++ {
		if err := st.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(nil); !errors.Is(err, ErrAllDeleted) {
		t.Fatalf("empty compact err = %v", err)
	}
	// The tombstoned base still serves (zero results, no error).
	nn, err := st.Search([]float64{0.5, 0.5}, 2, nil)
	if err != nil || len(nn) != 0 {
		t.Fatalf("search over fully deleted store: %v, %v", nn, err)
	}
}

// TestCompactionEnduranceBudgetProperty is the acceptance-criteria
// property test: across random mutate/compact schedules, no crossbar
// tile is ever programmed past its configured write-cycle budget, and
// once the array is spent further compactions are refused with
// ErrEndurance while queries stay exact.
func TestCompactionEnduranceBudgetProperty(t *testing.T) {
	t.Parallel()
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(100 + int64(trial)))
		model := testModel()
		const budget = 3
		tiles := 2 + rng.Intn(6)
		ledger, err := NewLedger(tiles, budget)
		if err != nil {
			t.Fatal(err)
		}
		st, err := New(randMatrix(rng, 20, 4), Options{
			Factory: hostFactory,
			Ledger:  ledger,
			Model:   model,
			// One image of 20..40 rows at s=4 costs 1 data crossbar
			// (×2 payloads); leave thresholds out of the way.
			MaxDelta:         1 << 20,
			VectorsPerObject: 1,
		})
		if errors.Is(err, ErrEndurance) {
			continue // tiny ledger cannot even hold the initial image
		}
		if err != nil {
			t.Fatal(err)
		}
		spent := false
		for step := 0; step < 40; step++ {
			switch rng.Intn(3) {
			case 0:
				if _, err := st.Insert(randVec(rng, 4)); err != nil {
					t.Fatal(err)
				}
			case 1:
				_, ids := st.Materialize()
				if len(ids) > 5 {
					if err := st.Delete(ids[rng.Intn(len(ids))]); err != nil {
						t.Fatal(err)
					}
				}
			case 2:
				err := st.Compact(nil)
				if err != nil && !errors.Is(err, ErrEndurance) {
					t.Fatal(err)
				}
				if errors.Is(err, ErrEndurance) {
					spent = true
					if fails := st.Stats().CompactionFailures; fails == 0 {
						t.Fatal("refused compaction not counted as failure")
					}
				}
			}
			if s := ledger.Stats(); s.MaxWear > budget {
				t.Fatalf("trial %d step %d: wear %d exceeds budget %d", trial, step, s.MaxWear, budget)
			}
			// Queries stay exact regardless of endurance state.
			if step%10 == 9 {
				q := randVec(rng, 4)
				got, err := st.Search(q, 3, nil)
				if err != nil {
					t.Fatal(err)
				}
				assertSameNeighbors(t, got, refSearch(st, q, 3), "endurance churn")
			}
		}
		if spent {
			// Once refused, the budget must genuinely be unable to host
			// a fresh image while the current one is held.
			if err := st.Compact(nil); err == nil {
				t.Fatal("compaction succeeded after the array was reported spent")
			}
		}
		st.Close()
	}
}

func TestAutoCompactTriggers(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(12))
	st, err := New(randMatrix(rng, 20, 4), Options{
		Factory:     hostFactory,
		MaxDelta:    8,
		AutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 40; i++ {
		if _, err := st.Insert(randVec(rng, 4)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-compaction never ran")
		}
		time.Sleep(time.Millisecond)
	}
	q := randVec(rng, 4)
	got, err := st.Search(q, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameNeighbors(t, got, refSearch(st, q, 5), "after auto-compact")
}

func TestCompactionChoosesTheorem4S(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(13))
	model := testModel()
	st, err := New(randMatrix(rng, 50, 8), Options{
		Factory:          hostFactory,
		Model:            model,
		VectorsPerObject: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wantS := model.ChooseS(50, pim.Divisors(8), 2)
	if got := st.Stats().ChosenS; got != wantS {
		t.Fatalf("initial ChosenS = %d, want %d", got, wantS)
	}
	// Grow occupancy past CapacityRows; the rebuild re-runs ChooseS
	// against the larger cardinality.
	for i := 0; i < 30; i++ {
		if _, err := st.Insert(randVec(rng, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(nil); err != nil {
		t.Fatal(err)
	}
	wantS = model.ChooseS(80, pim.Divisors(8), 2)
	if got := st.Stats().ChosenS; got != wantS {
		t.Fatalf("post-growth ChosenS = %d, want %d", got, wantS)
	}
}

func TestMetricsPublished(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(14))
	reg := obs.NewRegistry()
	metrics := NewMetrics(reg)
	ledger, err := NewLedger(64, 100)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(randMatrix(rng, 20, 4), Options{
		Factory: hostFactory,
		Ledger:  ledger,
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Insert(randVec(rng, 4)); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(3); err != nil {
		t.Fatal(err)
	}
	if metrics.DeltaRows.Value() != 1 || metrics.Tombstones.Value() != 1 {
		t.Fatalf("gauges = %d, %d", metrics.DeltaRows.Value(), metrics.Tombstones.Value())
	}
	before := metrics.EnduranceRemaining.Value()
	if err := st.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if metrics.Compactions.Value() != 1 {
		t.Fatalf("compactions counter = %d", metrics.Compactions.Value())
	}
	if metrics.CompactionSeconds.Count() != 1 {
		t.Fatalf("latency observations = %d", metrics.CompactionSeconds.Count())
	}
	if metrics.DeltaRows.Value() != 0 || metrics.Tombstones.Value() != 0 {
		t.Fatal("gauges not reset after compaction")
	}
	if after := metrics.EnduranceRemaining.Value(); after >= before {
		t.Fatalf("endurance remaining did not drop: %d -> %d", before, after)
	}
}

// TestHammerConcurrentMutateSearchCompact is the delta-compaction race
// hammer (run under -race in CI): concurrent inserts, deletes, updates,
// searches and explicit compactions, with every search result checked
// for internal consistency (sorted canonical order, no duplicate ids,
// no tombstoned results resurfacing... the oracle check itself would
// race with mutations, so the invariant checked is structural).
func TestHammerConcurrentMutateSearchCompact(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(15))
	st, err := New(randMatrix(rng, 50, 4), Options{
		Factory:     hostFactory,
		MaxDelta:    16,
		AutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, readers = 4, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r.Intn(3) {
				case 0:
					if _, err := st.Insert(randVec(r, 4)); err != nil && !errors.Is(err, ErrClosed) {
						errs <- err
						return
					}
				case 1:
					err := st.Delete(r.Intn(200))
					if err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrClosed) {
						errs <- err
						return
					}
				case 2:
					err := st.Update(r.Intn(200), randVec(r, 4))
					if err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrClosed) {
						errs <- err
						return
					}
				}
			}
		}(int64(100 + w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			meter := arch.NewMeter()
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randVec(rr, 4)
				k := 1 + rr.Intn(10)
				nn, err := st.Search(q, k, meter)
				if err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					errs <- err
					return
				}
				for i := range nn {
					if i > 0 && !(nn[i-1].Dist < nn[i].Dist ||
						(nn[i-1].Dist == nn[i].Dist && nn[i-1].Index < nn[i].Index)) {
						errs <- errors.New("results out of canonical order")
						return
					}
				}
			}
		}(int64(200 + r))
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	st.Close()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
