package measure

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	t.Parallel()
	for k, want := range map[Kind]string{ED: "ED", CS: "CS", PCC: "PCC", HD: "HD"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !ED.Distance() || !HD.Distance() || CS.Distance() || PCC.Distance() {
		t.Fatal("Distance() classification wrong")
	}
}

func TestSqEuclidean(t *testing.T) {
	t.Parallel()
	if got := SqEuclidean([]float64{1, 2}, []float64{4, 6}); got != 25 {
		t.Fatalf("ED = %v, want 25", got)
	}
	if got := SqEuclidean([]float64{1}, []float64{1}); got != 0 {
		t.Fatalf("ED of identical = %v", got)
	}
}

func TestCosine(t *testing.T) {
	t.Parallel()
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Fatalf("CS orthogonal = %v", got)
	}
	if got := Cosine([]float64{2, 0}, []float64{5, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CS parallel = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("CS zero vector = %v, want 0 by convention", got)
	}
}

func TestPearson(t *testing.T) {
	t.Parallel()
	// Perfect positive linear relation.
	p := []float64{1, 2, 3, 4}
	q := []float64{2, 4, 6, 8}
	if got := Pearson(p, q); math.Abs(got-1) > 1e-12 {
		t.Fatalf("PCC linear = %v, want 1", got)
	}
	// Perfect negative.
	r := []float64{4, 3, 2, 1}
	if got := Pearson(p, r); math.Abs(got+1) > 1e-12 {
		t.Fatalf("PCC anti = %v, want -1", got)
	}
	// Constant vector convention.
	if got := Pearson(p, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("PCC constant = %v, want 0", got)
	}
}

// Property: CS and PCC are bounded in [-1, 1], ED is non-negative and
// symmetric.
func TestMeasurePropertiesQuick(t *testing.T) {
	t.Parallel()
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		p, q := raw[:n], raw[n:2*n]
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		tol := 1e-9
		cs, pcc := Cosine(p, q), Pearson(p, q)
		ed := SqEuclidean(p, q)
		return cs >= -1-tol && cs <= 1+tol &&
			pcc >= -1-tol && pcc <= 1+tol &&
			ed >= 0 && ed == SqEuclidean(q, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitVector(t *testing.T) {
	t.Parallel()
	b := NewBitVector(130)
	b.Set(0, true)
	b.Set(64, true)
	b.Set(129, true)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Set/Get wrong")
	}
	if b.Ones() != 3 {
		t.Fatalf("Ones = %d, want 3", b.Ones())
	}
	b.Set(64, false)
	if b.Get(64) || b.Ones() != 2 {
		t.Fatal("clearing a bit failed")
	}
}

func TestBitVectorBoundsPanics(t *testing.T) {
	t.Parallel()
	b := NewBitVector(8)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Set must panic")
		}
	}()
	b.Set(8, true)
}

func TestHamming(t *testing.T) {
	t.Parallel()
	p := NewBitVector(8)
	q := NewBitVector(8)
	p.Set(0, true)
	p.Set(3, true)
	q.Set(3, true)
	q.Set(7, true)
	if got := Hamming(p, q); got != 2 {
		t.Fatalf("HD = %d, want 2", got)
	}
	if Hamming(p, p) != 0 {
		t.Fatal("HD(p,p) must be 0")
	}
}

// Property: Hamming is a metric on bit vectors (symmetry, identity,
// triangle inequality) and matches the naive per-bit count.
func TestHammingPropertiesQuick(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	randBV := func(bits int) BitVector {
		b := NewBitVector(bits)
		for i := 0; i < bits; i++ {
			if rng.Intn(2) == 1 {
				b.Set(i, true)
			}
		}
		return b
	}
	for trial := 0; trial < 100; trial++ {
		bits := 1 + rng.Intn(300)
		p, q, r := randBV(bits), randBV(bits), randBV(bits)
		naive := 0
		for i := 0; i < bits; i++ {
			if p.Get(i) != q.Get(i) {
				naive++
			}
		}
		if Hamming(p, q) != naive {
			t.Fatalf("HD != naive count (%d vs %d)", Hamming(p, q), naive)
		}
		if Hamming(p, q) != Hamming(q, p) {
			t.Fatal("HD not symmetric")
		}
		if Hamming(p, r) > Hamming(p, q)+Hamming(q, r) {
			t.Fatal("HD violates triangle inequality")
		}
	}
}
