package measure

import "fmt"

// Retained scalar reference — the executable specification the
// kernel-equivalence harness pins sqEuclideanKernel against. Keeps its
// natural bounds checks; never optimize it.

// SqEuclideanRef is the retained scalar reference for SqEuclidean, the
// executable specification the equivalence tests and fuzzers pin the
// unrolled kernel against. It must never be optimized.
func SqEuclideanRef(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("measure: ED of mismatched lengths %d and %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}
