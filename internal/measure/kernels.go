// Optimized distance kernel. This file must stay free of bounds checks:
// the CI kernel-verify job compiles it with -d=ssa/check_bce and fails on
// any IsInBounds. The retained reference lives in kernels_ref.go.
package measure

// sqEuclideanKernel is the 4-wide unrolled, bounds-check-free ED loop —
// the single hottest kernel in the repository (every refine step of every
// mining task lands here). Float adds stay in ascending index order into
// one accumulator so the result is bit-identical to the reference; see
// internal/vec/kernels.go for the ordering invariant.
func sqEuclideanKernel(p, q []float64) float64 {
	var s float64
	for len(p) >= 4 && len(q) >= 4 {
		d0 := p[0] - q[0]
		s += d0 * d0
		d1 := p[1] - q[1]
		s += d1 * d1
		d2 := p[2] - q[2]
		s += d2 * d2
		d3 := p[3] - q[3]
		s += d3 * d3
		p, q = p[4:], q[4:]
	}
	for len(p) > 0 && len(q) > 0 {
		d := p[0] - q[0]
		s += d * d
		p, q = p[1:], q[1:]
	}
	return s
}
