// Package measure implements the exact similarity measures of Table 2 of
// the paper: squared Euclidean distance (ED), cosine similarity (CS),
// Pearson correlation coefficient (PCC) on floating-point vectors, and
// Hamming distance (HD) on binary vectors.
//
// Following the paper's convention, "ED" always denotes the *squared*
// Euclidean distance Σ(pᵢ−qᵢ)²; every bound in internal/bound and
// internal/pimbound is a bound on this squared form. Since x² is monotone
// on non-negative reals, kNN results under ED² match kNN under true ED.
package measure

import (
	"fmt"
	"math"
	"math/bits"
)

// Kind identifies a similarity measure.
type Kind int

const (
	// ED is squared Euclidean distance (smaller is more similar).
	ED Kind = iota
	// CS is cosine similarity (larger is more similar).
	CS
	// PCC is the Pearson correlation coefficient (larger is more similar).
	PCC
	// HD is Hamming distance on binary vectors (smaller is more similar).
	HD
)

// String returns the paper's abbreviation for the measure.
func (k Kind) String() string {
	switch k {
	case ED:
		return "ED"
	case CS:
		return "CS"
	case PCC:
		return "PCC"
	case HD:
		return "HD"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Distance reports whether smaller values of the measure mean more similar
// (true for ED and HD) as opposed to similarity scores where larger is more
// similar (CS, PCC).
func (k Kind) Distance() bool { return k == ED || k == HD }

// SqEuclidean returns ED(p,q) = Σ (pᵢ−qᵢ)², the paper's squared Euclidean
// distance. Panics on length mismatch. The unrolled kernel is
// bit-identical to SqEuclideanRef (single accumulator, ascending index
// order — differentially tested).
func SqEuclidean(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("measure: ED of mismatched lengths %d and %d", len(p), len(q)))
	}
	return sqEuclideanKernel(p, q)
}

// Cosine returns CS(p,q) = p·q / (‖p‖‖q‖). If either vector has zero norm
// the similarity is defined as 0.
func Cosine(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("measure: CS of mismatched lengths %d and %d", len(p), len(q)))
	}
	var dot, np, nq float64
	for i := range p {
		dot += p[i] * q[i]
		np += p[i] * p[i]
		nq += q[i] * q[i]
	}
	if np == 0 || nq == 0 {
		return 0
	}
	return dot / math.Sqrt(np*nq)
}

// Pearson returns PCC(p,q) = Σ(pᵢ−µp)(qᵢ−µq) / (d·σp·σq), the Pearson
// correlation coefficient with population standard deviations. If either
// vector is constant (σ = 0) the correlation is defined as 0.
func Pearson(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("measure: PCC of mismatched lengths %d and %d", len(p), len(q)))
	}
	d := float64(len(p))
	if d == 0 {
		return 0
	}
	var sp, sq float64
	for i := range p {
		sp += p[i]
		sq += q[i]
	}
	mp, mq := sp/d, sq/d
	var cov, vp, vq float64
	for i := range p {
		dp, dq := p[i]-mp, q[i]-mq
		cov += dp * dq
		vp += dp * dp
		vq += dq * dq
	}
	if vp == 0 || vq == 0 {
		return 0
	}
	return cov / math.Sqrt(vp*vq)
}

// BitVector is a packed binary vector of a fixed number of bits, used for
// Hamming-distance workloads over LSH codes.
type BitVector struct {
	Bits  int
	Words []uint64 // ceil(Bits/64) words; unused high bits are zero
}

// NewBitVector allocates an all-zero bit vector of the given length.
func NewBitVector(bits int) BitVector {
	if bits < 0 {
		panic("measure: negative bit-vector length")
	}
	return BitVector{Bits: bits, Words: make([]uint64, (bits+63)/64)}
}

// Set sets bit i to v.
func (b BitVector) Set(i int, v bool) {
	if i < 0 || i >= b.Bits {
		panic(fmt.Sprintf("measure: bit index %d out of range [0,%d)", i, b.Bits))
	}
	if v {
		b.Words[i/64] |= 1 << (i % 64)
	} else {
		b.Words[i/64] &^= 1 << (i % 64)
	}
}

// Get returns bit i.
func (b BitVector) Get(i int) bool {
	if i < 0 || i >= b.Bits {
		panic(fmt.Sprintf("measure: bit index %d out of range [0,%d)", i, b.Bits))
	}
	return b.Words[i/64]>>(i%64)&1 == 1
}

// Ones returns the population count of the vector.
func (b BitVector) Ones() int {
	n := 0
	for _, w := range b.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Hamming returns HD(p,q) = Σ Δ(pᵢ−qᵢ), the number of differing bits.
// Panics if the two vectors have different lengths.
func Hamming(p, q BitVector) int {
	if p.Bits != q.Bits {
		panic(fmt.Sprintf("measure: HD of mismatched lengths %d and %d", p.Bits, q.Bits))
	}
	n := 0
	for i := range p.Words {
		n += bits.OnesCount64(p.Words[i] ^ q.Words[i])
	}
	return n
}
