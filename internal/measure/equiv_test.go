package measure

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// Differential tests pinning the unrolled SqEuclidean kernel bit-identical
// to the retained reference (same accumulator, same evaluation order) —
// the license for using it under the byte-identical eval goldens.

func TestSqEuclideanMatchesRef(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 128, 257} {
		for rep := 0; rep < 4; rep++ {
			p := make([]float64, n)
			q := make([]float64, n)
			for i := range p {
				p[i] = rng.NormFloat64()
				q[i] = rng.NormFloat64() * 1e3
			}
			got, want := SqEuclidean(p, q), SqEuclideanRef(p, q)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d: SqEuclidean=%x, ref=%x", n, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// FuzzMeasureKernelEquivalence drives arbitrary byte payloads through the
// optimized distance kernel and its reference, requiring bit-identical
// sums.
func FuzzMeasureKernelEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("0123456789abcdef0123456789abcdef"))
	seed := make([]byte, 8*17)
	for i := range seed {
		seed[i] = byte(i * 31)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 16
		p := make([]float64, n)
		q := make([]float64, n)
		for i := 0; i < n; i++ {
			fp := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16:]))
			fq := math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:]))
			if math.IsNaN(fp) || math.IsInf(fp, 0) {
				fp = float64(i)
			}
			if math.IsNaN(fq) || math.IsInf(fq, 0) {
				fq = -float64(i)
			}
			p[i], q[i] = fp, fq
		}
		got, want := SqEuclidean(p, q), SqEuclideanRef(p, q)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: SqEuclidean=%x, ref=%x", n, math.Float64bits(got), math.Float64bits(want))
		}
	})
}
