package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram quantile must be NaN")
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	g := r.Gauge("g", "help")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
}

func TestRegistryReusesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", Label{"shard", "1"})
	b := r.Counter("x_total", "h", Label{"shard", "1"})
	if a != b {
		t.Fatal("same name+labels must return the same handle")
	}
	other := r.Counter("x_total", "h", Label{"shard", "2"})
	if a == other {
		t.Fatal("different labels must return distinct handles")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "h")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1.5+1.7+3+3+7+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// Rank 4 of 7 (median) lands in the (2,4] bucket.
	if q := h.Quantile(0.5); q <= 2 || q > 4 {
		t.Fatalf("p50 = %g, want in (2,4]", q)
	}
	// The overflow sample clamps the top quantile to the last bound.
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 = %g, want clamp to 8", q)
	}
	// Out-of-range q values clamp.
	if q := h.Quantile(-1); math.IsNaN(q) {
		t.Fatal("q<0 must clamp, not NaN")
	}
}

func TestHistogramEmptyAndPanics(t *testing.T) {
	h := NewHistogram([]float64{1})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	for _, bounds := range [][]float64{nil, {}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) must panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("pim_q_total", "queries served").Add(3)
	r.Gauge("pim_inflight", "in flight").Set(2)
	h := r.Histogram("pim_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Counter("pim_shard_q_total", "per shard", Label{"shard", "0"}).Add(7)
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "pim_rows", Help: "rows", Type: TypeGauge, Value: 42})
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pim_q_total counter",
		"pim_q_total 3",
		"# TYPE pim_inflight gauge",
		"pim_inflight 2",
		"# TYPE pim_lat_seconds histogram",
		`pim_lat_seconds_bucket{le="0.1"} 1`,
		`pim_lat_seconds_bucket{le="1"} 2`,
		`pim_lat_seconds_bucket{le="+Inf"} 3`,
		"pim_lat_seconds_sum 5.55",
		"pim_lat_seconds_count 3",
		`pim_shard_q_total{shard="0"} 7`,
		"pim_rows 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Families must come out sorted by name.
	if strings.Index(out, "pim_inflight") > strings.Index(out, "pim_q_total") {
		t.Error("families not sorted by name")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h").Add(9)
	h := r.Histogram("lat", "h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, b.String())
	}
	if parsed["c_total"] != float64(9) {
		t.Fatalf("c_total = %v, want 9", parsed["c_total"])
	}
	hist, ok := parsed["lat"].(map[string]any)
	if !ok {
		t.Fatalf("lat = %T, want object", parsed["lat"])
	}
	if hist["count"] != float64(2) {
		t.Fatalf("lat.count = %v, want 2", hist["count"])
	}
	for _, k := range []string{"sum", "p50", "p95", "p99"} {
		if _, ok := hist[k]; !ok {
			t.Errorf("lat missing %q", k)
		}
	}
}

func TestExpvarVar(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h").Inc()
	s := r.ExpvarVar().String()
	var parsed map[string]any
	if err := json.Unmarshal([]byte(s), &parsed); err != nil {
		t.Fatalf("ExpvarVar is not valid JSON: %v\n%s", err, s)
	}
	if parsed["c_total"] != float64(1) {
		t.Fatalf("c_total = %v, want 1", parsed["c_total"])
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(exp) != len(want) {
		t.Fatalf("ExpBuckets len = %d, want %d", len(exp), len(want))
	}
	for i := range want {
		if math.Abs(exp[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets[%d] = %g, want %g", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(10, 5, 3)
	wantLin := []float64{10, 15, 20}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Fatalf("LinearBuckets[%d] = %g, want %g", i, lin[i], wantLin[i])
		}
	}
}
