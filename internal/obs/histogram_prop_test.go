package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestHistogramQuantileProperties is the satellite property test: on random
// samples, (1) quantile estimates are monotone non-decreasing in q, and
// (2) every estimate is within one bucket width of the exact sample
// quantile, as long as samples land in the bucketed range (uniform-width
// buckets make "one bucket width" a single constant).
func TestHistogramQuantileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		lo, hi = 0.0, 100.0
		nBuck  = 50
		width  = (hi - lo) / nBuck
	)
	bounds := LinearBuckets(lo+width, width, nBuck) // 2,4,…,100: covers (0,100]
	qs := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}

	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		samples := make([]float64, n)
		h := NewHistogram(bounds)
		for i := range samples {
			// Mix distributions so buckets are unevenly filled.
			var v float64
			switch trial % 3 {
			case 0:
				v = lo + (hi-lo)*rng.Float64() // uniform
			case 1:
				v = lo + (hi-lo)*rng.Float64()*rng.Float64() // skewed low
			default:
				v = math.Min(hi, lo+math.Abs(rng.NormFloat64())*15) // half-normal
			}
			samples[i] = v
			h.Observe(v)
		}
		sort.Float64s(samples)

		prev := math.Inf(-1)
		for _, q := range qs {
			got := h.Quantile(q)
			if math.IsNaN(got) {
				t.Fatalf("trial %d: Quantile(%g) = NaN with %d samples", trial, q, n)
			}
			if got < prev {
				t.Fatalf("trial %d: quantiles not monotone: Quantile(%g)=%g < previous %g", trial, q, got, prev)
			}
			prev = got

			// Exact sample quantile at rank ⌈q·n⌉ (same rank convention).
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := samples[rank-1]
			if diff := math.Abs(got - exact); diff > width+1e-9 {
				t.Fatalf("trial %d n=%d: Quantile(%g)=%g vs exact %g: off by %g > bucket width %g",
					trial, n, q, got, exact, diff, width)
			}
		}
	}
}
