package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. shard="3").
type Label struct{ Key, Value string }

// Counter is a monotonically increasing atomic counter. Methods are
// nil-safe so uninstrumented paths cost only a nil check.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas are a caller bug; they are not checked on
// the hot path but render as non-monotonic scrapes).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic bucket counts; bounds
// are ascending upper bounds with an implicit +Inf bucket at the end.
// Observe is lock-free; quantiles are estimated by linear interpolation
// inside the bucket holding the target rank, so any estimate is within
// one bucket width of the exact sample quantile (property-tested).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// NewHistogram builds a histogram over ascending bounds. It panics on
// unsorted or empty bounds — bucket layout is a programming decision, not
// runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot copies bucket counts (a consistent-enough view: each bucket is
// read atomically; concurrent Observes may straddle the loop, which only
// shifts the estimate by in-flight samples).
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) by interpolating inside
// the bucket holding rank ⌈q·count⌉. Returns NaN on an empty histogram.
// The estimate is monotone in q and, for samples within the bucketed
// range, within one bucket width of the exact sample quantile. Samples in
// the +Inf overflow bucket clamp to the last finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	counts := h.snapshot()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if cum+c < rank {
			cum += c
			continue
		}
		if i == len(h.bounds) { // overflow bucket: clamp
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		// Linear interpolation of the rank inside this bucket.
		return lo + (hi-lo)*float64(rank-cum)/float64(c)
	}
	return h.bounds[len(h.bounds)-1] // unreachable: rank <= total
}

// MetricType tags exposition output.
type MetricType string

// The exposition types.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Sample is one collector-produced reading: a metric that lives outside
// the registry (e.g. a cumulative arch.Meter counter snapshotted at
// scrape time).
type Sample struct {
	Name   string
	Help   string
	Type   MetricType
	Labels []Label
	Value  float64
}

// CollectorFunc emits samples at scrape time.
type CollectorFunc func(emit func(Sample))

// series is one registered metric instance.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	typ    MetricType
	series map[string]*series // keyed by rendered labels
}

// Registry holds named metrics and scrape-time collectors. Registration
// takes a lock; the returned Counter/Gauge/Histogram handles are then
// lock-free on the hot path. It is safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []CollectorFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) getSeries(name, help string, typ MetricType, labels []Label) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	s := f.series[key]
	if s == nil {
		ls := make([]Label, len(labels))
		copy(ls, labels)
		s = &series{labels: ls}
		f.series[key] = s
	}
	return s
}

// Counter registers (or fetches) a counter. Nil-safe: a nil registry
// returns a nil handle whose methods no-op.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.getSeries(name, help, TypeCounter, labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.getSeries(name, help, TypeGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or fetches) a histogram over the given bounds; the
// bounds of the first registration win.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.getSeries(name, help, TypeHistogram, labels)
	if s.hist == nil {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// RegisterCollector adds a scrape-time sample source (called on every
// exposition). Collectors must be safe for concurrent invocation.
func (r *Registry) RegisterCollector(c CollectorFunc) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// gather snapshots every family (registered + collected), sorted by name.
func (r *Registry) gather() []*family {
	r.mu.RLock()
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		cp := &family{name: f.name, help: f.help, typ: f.typ, series: make(map[string]*series, len(f.series))}
		for k, s := range f.series {
			cp.series[k] = s
		}
		fams[name] = cp
	}
	collectors := make([]CollectorFunc, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.RUnlock()

	for _, c := range collectors {
		c(func(s Sample) {
			f := fams[s.Name]
			if f == nil {
				f = &family{name: s.Name, help: s.Help, typ: s.Type, series: make(map[string]*series)}
				fams[s.Name] = f
			}
			sr := &series{labels: s.Labels}
			switch s.Type {
			case TypeCounter:
				c := &Counter{}
				c.Add(int64(s.Value))
				sr.ctr = c
			default:
				gg := &Gauge{}
				gg.Set(int64(s.Value))
				sr.gauge = gg
			}
			f.series[labelKey(s.Labels)] = sr
		})
	}
	out := make([]*family, 0, len(fams))
	for _, f := range fams {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (histograms as _bucket/_sum/_count with cumulative le buckets).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.gather() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch {
			case s.ctr != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(s.labels), s.ctr.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, promLabels(s.labels), s.gauge.Value())
			case s.hist != nil:
				h := s.hist
				counts := h.snapshot()
				var cum int64
				for i, bound := range h.bounds {
					cum += counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, promLabels(append(s.labels, Label{"le", formatFloat(bound)})), cum)
				}
				cum += counts[len(h.bounds)]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, promLabels(append(s.labels, Label{"le", "+Inf"})), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, promLabels(s.labels), formatFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, promLabels(s.labels), h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders every metric as one JSON object (the expvar
// exposition): counters and gauges as numbers, histograms as
// {count, sum, p50, p95, p99}. Keys are "name" or "name{labels}".
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}")
		return err
	}
	var b strings.Builder
	b.WriteString("{")
	first := true
	emit := func(key, val string) {
		if !first {
			b.WriteString(",")
		}
		first = false
		fmt.Fprintf(&b, "\n  %q: %s", key, val)
	}
	for _, f := range r.gather() {
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			key := f.name + promLabels(s.labels)
			switch {
			case s.ctr != nil:
				emit(key, fmt.Sprintf("%d", s.ctr.Value()))
			case s.gauge != nil:
				emit(key, fmt.Sprintf("%d", s.gauge.Value()))
			case s.hist != nil:
				h := s.hist
				emit(key, fmt.Sprintf(`{"count": %d, "sum": %s, "p50": %s, "p95": %s, "p99": %s}`,
					h.Count(), jsonFloat(h.Sum()),
					jsonFloat(h.Quantile(0.50)), jsonFloat(h.Quantile(0.95)), jsonFloat(h.Quantile(0.99))))
			}
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ExpvarVar wraps the registry as an expvar.Var so callers can
// expvar.Publish it next to the stdlib's cmdline/memstats vars.
func (r *Registry) ExpvarVar() expvar.Var {
	return expvar.Func(func() any {
		var b strings.Builder
		_ = r.WriteJSON(&b)
		return rawJSON(b.String())
	})
}

// rawJSON marshals as-is (the registry already rendered valid JSON).
type rawJSON string

func (j rawJSON) MarshalJSON() ([]byte, error) { return []byte(j), nil }

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x00" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return fmt.Sprintf("%g", v)
}
