// Package obs is the observability subsystem for the serving engine: a
// concurrency-safe metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms with interpolated quantiles) with Prometheus
// text-format and expvar JSON exposition, plus request-scoped tracing — a
// lightweight span tree recorded per sampled query and kept in a ring
// buffer of recent traces, renderable as a text flame view.
//
// The paper's methodology is measurement-first: §IV profiles algorithms by
// hardware component and §V-D picks execution plans from measured transfer
// costs and pruning ratios. This package extends that philosophy from
// offline profiling to a live system: the serving layer (internal/serve)
// threads a context-carried trace through engine → shard → bound-eval →
// PIM-dot → refine, and the registry wraps the cumulative arch.Meter,
// fault counters and per-shard serve state behind scrape endpoints
// (/metrics, /debug/vars, /debug/traces — see Handler).
//
// Everything is nil-safe: a nil *Observer (and the nil *Span it hands out)
// turns every call into a no-op, so instrumented code pays only a nil
// check when observability is off.
package obs

import (
	"sync"
	"time"
)

// Config configures an Observer.
type Config struct {
	// SampleRate enables head-based trace sampling: 1 traces every query,
	// R > 1 traces one query in R, 0 disables tracing entirely.
	SampleRate int
	// TraceBuffer is the ring-buffer capacity for recent completed traces
	// (default 64).
	TraceBuffer int
	// LatencyBuckets overrides the query-latency histogram buckets
	// (seconds, ascending upper bounds; default DefLatencyBuckets).
	LatencyBuckets []float64
}

// Observer bundles a metrics registry with a tracer; it is the single
// handle instrumented layers share. The zero Config yields metrics with
// tracing off.
type Observer struct {
	reg        *Registry
	tracer     *Tracer
	events     *eventRing
	cfg        Config
	expvarOnce sync.Once
}

// New builds an Observer. Nil-safe consumers may also pass a nil
// *Observer around freely.
func New(cfg Config) *Observer {
	if cfg.TraceBuffer <= 0 {
		cfg.TraceBuffer = 64
	}
	if len(cfg.LatencyBuckets) == 0 {
		cfg.LatencyBuckets = DefLatencyBuckets()
	}
	return &Observer{
		reg:    NewRegistry(),
		tracer: NewTracer(cfg.SampleRate, cfg.TraceBuffer),
		events: newEventRing(cfg.TraceBuffer),
		cfg:    cfg,
	}
}

// Registry returns the metrics registry (nil when o is nil).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the tracer (nil when o is nil).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// LatencyBuckets returns the configured latency histogram bounds.
func (o *Observer) LatencyBuckets() []float64 {
	if o == nil {
		return DefLatencyBuckets()
	}
	return o.cfg.LatencyBuckets
}

// Event records a timestamped out-of-band event (plan decisions, shard
// degradations) in a ring shown by the /debug/traces endpoint. No-op on a
// nil Observer.
func (o *Observer) Event(name string, attrs ...Attr) {
	if o == nil {
		return
	}
	o.events.add(Event{Time: time.Now(), Name: name, Attrs: attrs})
}

// Events returns the recent out-of-band events, oldest first.
func (o *Observer) Events() []Event {
	if o == nil {
		return nil
	}
	return o.events.snapshot()
}

// DefLatencyBuckets returns the default query-latency bounds: exponential
// from 50µs to ~6.5s (seconds).
func DefLatencyBuckets() []float64 {
	return ExpBuckets(50e-6, 2, 18)
}

// ExpBuckets returns n ascending bounds start, start·factor, … .
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n ascending bounds start, start+width, … .
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}
