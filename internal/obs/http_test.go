package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	o := New(Config{SampleRate: 1})
	o.Registry().Counter("pim_serve_queries_total", "queries").Add(5)
	h := o.Handler()

	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "pim_serve_queries_total 5") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
}

func TestHandlerDebugVars(t *testing.T) {
	o := New(Config{})
	o.Registry().Gauge("g", "h").Set(7)
	code, body := get(t, o.Handler(), "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", code)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	// Our registry is published under a pimmine* key next to stdlib vars.
	found := false
	for k, v := range parsed {
		if !strings.HasPrefix(k, "pimmine") {
			continue
		}
		if m, ok := v.(map[string]any); ok && m["g"] == float64(7) {
			found = true
		}
	}
	if !found {
		t.Fatalf("/debug/vars missing pimmine registry with g=7:\n%s", body)
	}
}

func TestHandlerDebugTraces(t *testing.T) {
	o := New(Config{SampleRate: 1})
	o.Event("plan.chosen", A("plan", "FNN-PIM"))
	_, sp := o.Tracer().Start(context.Background(), "engine.search")
	sp.StartChild("shard 0").End()
	sp.End()

	code, body := get(t, o.Handler(), "/debug/traces?n=5")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", code)
	}
	for _, want := range []string{"== events ==", "plan.chosen plan=FNN-PIM", "1 recent trace(s)", "engine.search", "└─ shard 0"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/traces missing %q:\n%s", want, body)
		}
	}
}

func TestNilObserverHandler(t *testing.T) {
	var o *Observer
	code, _ := get(t, o.Handler(), "/metrics")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("nil observer /metrics = %d, want 503", code)
	}
}
