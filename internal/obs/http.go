package obs

import (
	"expvar"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns an http.Handler exposing the observer:
//
//	/metrics       Prometheus text format
//	/debug/vars    expvar JSON (stdlib vars plus this registry)
//	/debug/traces  recent sampled traces as text flame views (?n=K)
//
// Returns a 503-only handler for a nil observer so callers can mount it
// unconditionally.
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	if o == nil {
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "observability disabled", http.StatusServiceUnavailable)
		})
		return mux
	}
	o.publishExpvar()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		n := 10
		if v := r.URL.Query().Get("n"); v != "" {
			if p, err := strconv.Atoi(v); err == nil {
				n = p
			}
		}
		if evs := o.Events(); len(evs) > 0 {
			fmt.Fprintln(w, "== events ==")
			for _, e := range evs {
				fmt.Fprintf(w, "%s %s", e.Time.Format("15:04:05.000"), e.Name)
				for _, a := range e.Attrs {
					fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
				}
				fmt.Fprintln(w)
			}
			fmt.Fprintln(w)
		}
		traces := o.tracer.Recent(n)
		fmt.Fprintf(w, "== %d recent trace(s) ==\n", len(traces))
		for _, t := range traces {
			fmt.Fprintln(w)
			fmt.Fprint(w, t.Render())
		}
	})
	return mux
}

// publishExpvar publishes the registry into the process-global expvar
// namespace under "pimmine" (suffixed when several observers exist in one
// process, e.g. in tests — expvar panics on duplicate names).
func (o *Observer) publishExpvar() {
	o.expvarOnce.Do(func() {
		name := "pimmine"
		for i := 2; expvar.Get(name) != nil; i++ {
			name = fmt.Sprintf("pimmine_%d", i)
		}
		expvar.Publish(name, o.reg.ExpvarVar())
	})
}
