package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4, 16)
	sampled := 0
	for i := 0; i < 16; i++ {
		_, sp := tr.Start(context.Background(), "q")
		if sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 4 {
		t.Fatalf("rate 4 over 16 requests sampled %d, want 4", sampled)
	}

	all := NewTracer(1, 16)
	if _, sp := all.Start(context.Background(), "q"); sp == nil {
		t.Fatal("rate 1 must sample everything")
	}
	off := NewTracer(0, 16)
	if _, sp := off.Start(context.Background(), "q"); sp != nil {
		t.Fatal("rate 0 must sample nothing")
	}
	var nilTr *Tracer
	if _, sp := nilTr.Start(context.Background(), "q"); sp != nil {
		t.Fatal("nil tracer must sample nothing")
	}
}

func TestTracerRingNewestFirst(t *testing.T) {
	tr := NewTracer(1, 3)
	for i := 0; i < 5; i++ {
		_, sp := tr.Start(context.Background(), "q")
		sp.End()
	}
	got := tr.Recent(0)
	if len(got) != 3 {
		t.Fatalf("ring of 3 after 5 traces holds %d", len(got))
	}
	// IDs 1..5 were assigned; the ring keeps 3,4,5 and Recent is newest
	// first.
	for i, want := range []uint64{5, 4, 3} {
		if got[i].ID != want {
			t.Fatalf("Recent[%d].ID = %d, want %d", i, got[i].ID, want)
		}
	}
	if one := tr.Recent(1); len(one) != 1 || one[0].ID != 5 {
		t.Fatalf("Recent(1) = %v", one)
	}
}

func TestSpanTreeAndRender(t *testing.T) {
	tr := NewTracer(1, 4)
	ctx, root := tr.Start(context.Background(), "engine.search")
	root.SetAttr("k", 10)
	shard := root.StartChild("shard 0")
	_, inner := StartSpan(ContextWithSpan(ctx, shard), "knn.FNN-PIM")
	inner.Annotate("LB-stage", A("in", 100), A("out", 7))
	inner.AddChild("refine", 3*time.Millisecond, A("in", 7))
	inner.End()
	shard.End()
	root.End()

	traces := tr.Recent(1)
	if len(traces) != 1 {
		t.Fatal("root End must seal the trace into the ring")
	}
	out := traces[0].Render()
	for _, want := range []string{
		"engine.search",
		"[k=10]",
		"├─ ", // tree connectors present
		"└─ ",
		"shard 0",
		"knn.FNN-PIM",
		"LB-stage  [in=100 out=7]",
		"refine (3.00ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Depth: refine sits under knn.FNN-PIM under shard 0 under root.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "refine") && !strings.HasPrefix(line, "   │  ") && !strings.HasPrefix(line, "│  ") {
			// refine is at depth 3: prefix is two levels of guides.
			if !strings.Contains(line, "─ refine") {
				t.Errorf("refine not rendered as a tree node: %q", line)
			}
		}
	}
}

func TestNilSpanChain(t *testing.T) {
	var sp *Span
	c := sp.StartChild("x")
	if c != nil {
		t.Fatal("nil span StartChild must return nil")
	}
	sp.SetAttr("k", 1)
	sp.Annotate("e")
	sp.AddChild("y", time.Second)
	sp.End()
	if sp.Duration() != 0 {
		t.Fatal("nil span duration must be 0")
	}
	// StartSpan with no active span: no-op chain.
	ctx, got := StartSpan(context.Background(), "x")
	if got != nil {
		t.Fatal("StartSpan without an active span must return nil")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("ctx must stay span-free")
	}
	if SpanFromContext(nil) != nil {
		t.Fatal("nil ctx must yield nil span")
	}
}

// TestLateSpanFinishDoesNotRaceRender mimics a shard span finishing after
// its query's deadline while another goroutine renders the trace — run
// under -race this must be clean.
func TestLateSpanFinishDoesNotRaceRender(t *testing.T) {
	tr := NewTracer(1, 4)
	_, root := tr.Start(context.Background(), "engine.search")
	late := root.StartChild("shard 0")
	root.End() // query timed out; shard still running

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			late.SetAttr("i", i)
		}
		late.End()
	}()
	go func() {
		defer wg.Done()
		for _, tt := range tr.Recent(0) {
			for i := 0; i < 100; i++ {
				_ = tt.Render()
			}
		}
	}()
	wg.Wait()
}

func TestEventRing(t *testing.T) {
	o := New(Config{})
	o.Event("plan.chosen", A("plan", "FNN"))
	o.Event("serve.degraded-shards", A("n", 1))
	evs := o.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "plan.chosen" || evs[1].Name != "serve.degraded-shards" {
		t.Fatalf("events out of order: %v", evs)
	}
	// Nil observer no-ops.
	var nilO *Observer
	nilO.Event("x")
	if nilO.Events() != nil {
		t.Fatal("nil observer must have no events")
	}
	if nilO.Registry() != nil || nilO.Tracer() != nil {
		t.Fatal("nil observer accessors must return nil")
	}
}
