package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span annotation.
type Attr struct{ Key, Value string }

// A is shorthand for building an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: fmt.Sprint(value)} }

// Event is one out-of-band observer event (see Observer.Event).
type Event struct {
	Time  time.Time
	Name  string
	Attrs []Attr
}

// Span is one node of a trace's span tree. All methods are nil-safe: the
// unsampled path hands out nil spans and instrumented code calls straight
// through. Mutations lock the owning trace, so a span finished late (a
// shard still running after its query timed out) never races a render.
type Span struct {
	Name     string
	start    time.Time
	dur      time.Duration
	attrs    []Attr
	children []*Span
	trace    *Trace
}

// StartChild opens a child span (started now).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, start: time.Now(), trace: s.trace}
	s.trace.mu.Lock()
	s.children = append(s.children, c)
	s.trace.mu.Unlock()
	return c
}

// AddChild attaches an already-measured child span (used for phases whose
// duration is accumulated piecewise, like interleaved exact refinement).
func (s *Span) AddChild(name string, d time.Duration, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, start: time.Now().Add(-d), dur: d, attrs: attrs, trace: s.trace}
	s.trace.mu.Lock()
	s.children = append(s.children, c)
	s.trace.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Ending twice keeps the first
// duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	if s.dur == 0 {
		s.dur = time.Since(s.start)
	}
	root := s == s.trace.root
	s.trace.mu.Unlock()
	if root {
		s.trace.finish()
	}
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, A(key, value))
	s.trace.mu.Unlock()
}

// Annotate records a zero-duration event child (e.g. a fault-recovery
// event observed mid-query).
func (s *Span) Annotate(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	c := &Span{Name: name, start: time.Now(), trace: s.trace, attrs: attrs}
	s.trace.mu.Lock()
	s.children = append(s.children, c)
	s.trace.mu.Unlock()
}

// Duration returns the span's closed duration (0 while open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	return s.dur
}

// Trace is one sampled query's span tree.
type Trace struct {
	ID   uint64
	Time time.Time // root start

	mu     sync.Mutex
	root   *Span
	tracer *Tracer
	done   bool
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// finish pushes the trace into its tracer's ring (once).
func (t *Trace) finish() {
	t.mu.Lock()
	already := t.done
	t.done = true
	t.mu.Unlock()
	if already || t.tracer == nil {
		return
	}
	t.tracer.push(t)
}

// Render returns the text flame view: one line per span, indented by
// depth, with durations, attrs, and each span's share of its parent.
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d @ %s\n", t.ID, t.Time.Format(time.RFC3339Nano))
	var walk func(s *Span, depth int, prefix string, last bool, parentDur time.Duration)
	walk = func(s *Span, depth int, prefix string, last bool, parentDur time.Duration) {
		connector, childPrefix := "├─ ", prefix+"│  "
		if last {
			connector, childPrefix = "└─ ", prefix+"   "
		}
		if depth == 0 {
			connector, childPrefix = "", ""
		}
		line := prefix + connector + s.Name
		if s.dur > 0 {
			line += fmt.Sprintf(" (%s", fmtDur(s.dur))
			if parentDur > 0 {
				line += fmt.Sprintf(", %.0f%%", 100*float64(s.dur)/float64(parentDur))
			}
			line += ")"
		}
		if len(s.attrs) > 0 {
			parts := make([]string, len(s.attrs))
			for i, a := range s.attrs {
				parts[i] = a.Key + "=" + a.Value
			}
			line += "  [" + strings.Join(parts, " ") + "]"
		}
		b.WriteString(line + "\n")
		for i, c := range s.children {
			walk(c, depth+1, childPrefix, i == len(s.children)-1, s.dur)
		}
	}
	walk(t.root, 0, "", true, 0)
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Tracer makes head-based sampling decisions and retains recent completed
// traces in a ring buffer. Safe for concurrent use.
type Tracer struct {
	rate int64
	n    atomic.Int64
	id   atomic.Uint64

	mu   sync.Mutex
	ring []*Trace
	next int
	len  int
}

// NewTracer builds a tracer sampling one trace in rate (0 disables) with
// a ring of bufSize recent traces.
func NewTracer(rate, bufSize int) *Tracer {
	if bufSize <= 0 {
		bufSize = 64
	}
	return &Tracer{rate: int64(rate), ring: make([]*Trace, bufSize)}
}

// Start makes the head sampling decision for one request. When sampled it
// returns a context carrying the new root span plus the span itself; when
// not (or on a nil tracer) it returns ctx unchanged and a nil span.
// Callers must End() the returned span (nil-safe) — ending the root seals
// the trace into the ring.
func (tr *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if tr == nil || tr.rate <= 0 {
		return ctx, nil
	}
	if tr.rate > 1 && tr.n.Add(1)%tr.rate != 1 {
		return ctx, nil
	}
	t := &Trace{ID: tr.id.Add(1), Time: time.Now(), tracer: tr}
	root := &Span{Name: name, start: t.Time, trace: t}
	t.root = root
	return ContextWithSpan(ctx, root), root
}

// push inserts a completed trace into the ring.
func (tr *Tracer) push(t *Trace) {
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	if tr.len < len(tr.ring) {
		tr.len++
	}
	tr.mu.Unlock()
}

// Recent returns up to n recent completed traces, newest first (n <= 0
// means all buffered).
func (tr *Tracer) Recent(n int) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n <= 0 || n > tr.len {
		n = tr.len
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, tr.ring[(tr.next-i+len(tr.ring))%len(tr.ring)])
	}
	return out
}

// ctxKey carries the active span through a request's context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sp (ctx unchanged when sp is nil).
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// StartSpan opens a child of the context's active span and returns a
// derived context carrying it. With no active span it returns (ctx, nil):
// the whole instrumentation chain no-ops on unsampled requests.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.StartChild(name)
	return ContextWithSpan(ctx, sp), sp
}

// eventRing retains recent out-of-band events.
type eventRing struct {
	mu   sync.Mutex
	ring []Event
	next int
	len  int
}

func newEventRing(n int) *eventRing {
	if n <= 0 {
		n = 64
	}
	return &eventRing{ring: make([]Event, n)}
}

func (r *eventRing) add(e Event) {
	r.mu.Lock()
	r.ring[r.next] = e
	r.next = (r.next + 1) % len(r.ring)
	if r.len < len(r.ring) {
		r.len++
	}
	r.mu.Unlock()
}

func (r *eventRing) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.len)
	for i := r.len; i >= 1; i-- {
		out = append(out, r.ring[(r.next-i+len(r.ring))%len(r.ring)])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}
