// Package dbscan implements density-based clustering (Ester et al., KDD
// 1996) — §II-C of the paper lists "partitioning/density-based
// clustering" among the similarity-based mining tasks its framework
// targets. DBSCAN's inner loop is the ε-range query, a pure similarity
// computation, so the PIM variant prunes every candidate with LB_PIM-ED
// (Theorem 1) before the exact distance — the same filter-and-refine
// recipe as kNN, and like it, exact: host and PIM variants produce
// identical clusterings (integration-tested).
package dbscan

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

const operandBytes = 4

// Label values in Result.Labels.
const (
	// Noise marks points in no cluster.
	Noise = -1
)

// Result is one clustering run's outcome.
type Result struct {
	// Labels holds a cluster id ≥ 0 per point, or Noise.
	Labels []int
	// Clusters is the number of clusters found.
	Clusters int
	// CorePoints counts points with ≥ minPts ε-neighbors.
	CorePoints int
}

// Clusterer runs DBSCAN over a dataset. With a non-nil PIM index it runs
// the PIM-optimized range queries.
type Clusterer struct {
	Data *vec.Matrix

	eng  *pim.Engine
	ix   *pimbound.EDIndex
	pay  *pim.Payload
	dots []int64
}

// New builds the host-only clusterer.
func New(data *vec.Matrix) *Clusterer { return &Clusterer{Data: data} }

// NewPIM quantizes the dataset and programs it onto the array.
func NewPIM(eng *pim.Engine, data *vec.Matrix, q quant.Quantizer, capacityN int) (*Clusterer, error) {
	if !eng.Model().Fits(capacityN, data.D, 1) {
		return nil, fmt.Errorf("dbscan: %d-dim floors for N=%d exceed PIM capacity", data.D, capacityN)
	}
	ix := pimbound.BuildED(data, q)
	pay, err := eng.Program("dbscan/points", data.N, data.D, 1, ix.Floor)
	if err != nil {
		return nil, err
	}
	return &Clusterer{Data: data, eng: eng, ix: ix, pay: pay}, nil
}

// Name reports which path the clusterer runs.
func (c *Clusterer) Name() string {
	if c.ix != nil {
		return "DBSCAN-PIM"
	}
	return "DBSCAN"
}

// Run clusters with radius eps (true Euclidean) and density threshold
// minPts (the point itself counts, per the original formulation).
func (c *Clusterer) Run(eps float64, minPts int, meter *arch.Meter) (*Result, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("dbscan: eps must be positive, got %v", eps)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("dbscan: minPts must be >= 1, got %d", minPts)
	}
	n := c.Data.N
	eps2 := eps * eps
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)
	res := &Result{Labels: labels}
	var exact, consults int64

	// rangeQuery returns the indices within eps of point i (including i).
	neighbors := make([]int, 0, 64)
	rangeQuery := func(i int) []int {
		neighbors = neighbors[:0]
		var qf pimbound.EDQuery
		if c.ix != nil {
			qf = c.ix.Query(c.Data.Row(i))
			var err error
			c.dots, err = c.eng.QueryAll(meter, "LBPIM-ED", c.pay, qf.Floor, c.dots)
			if err != nil {
				panic(fmt.Sprintf("dbscan: PIM pass: %v", err))
			}
		}
		p := c.Data.Row(i)
		for j := 0; j < n; j++ {
			if c.ix != nil {
				consults++
				if c.ix.LB(j, qf, c.dots[j]) > eps2 {
					continue
				}
			}
			exact++
			if measure.SqEuclidean(p, c.Data.Row(j)) <= eps2 {
				neighbors = append(neighbors, j)
			}
		}
		return neighbors
	}

	cluster := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		seed := rangeQuery(i)
		if len(seed) < minPts {
			continue // noise (may be claimed as a border point later)
		}
		res.CorePoints++
		labels[i] = cluster
		// Expand the cluster over the density-connected region.
		queue := append([]int(nil), seed...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = cluster // border point
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = cluster
			nb := rangeQuery(j)
			if len(nb) >= minPts {
				res.CorePoints++
				queue = append(queue, nb...)
			}
		}
		cluster++
	}
	res.Clusters = cluster

	d := int64(c.Data.D)
	ed := meter.C(arch.FuncED)
	ed.Ops += exact * 3 * d
	ed.SeqBytes += exact * d * operandBytes
	ed.Branches += exact
	ed.Calls += exact
	if consults > 0 {
		cc := meter.C("LBPIM-ED")
		cc.Ops += consults * 8
		cc.SeqBytes += consults * 2 * operandBytes
		cc.Branches += consults
		cc.Calls += consults
	}
	meter.C(arch.FuncOther).Ops += int64(n)
	return res, nil
}
