package dbscan

import (
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/eval"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// clusteredData returns tight, well-separated clusters plus ground-truth
// labels and a few isolated noise points.
func clusteredData(t *testing.T, n int) (*vec.Matrix, []int, []int) {
	t.Helper()
	prof := dataset.Profile{Name: "t", FullN: n, D: 16, Clusters: 4, Correlation: 0.7, Spread: 0.03}
	ds := dataset.Generate(prof, n, 88)
	noise := []int{n / 7, n / 3, n - 5}
	for _, i := range noise {
		row := ds.X.Row(i)
		for j := range row {
			if j%2 == 0 {
				row[j] = 1
			} else {
				row[j] = 0
			}
		}
	}
	return ds.X, ds.Labels, noise
}

func newPIMClusterer(t *testing.T, data *vec.Matrix) *Clusterer {
	t.Helper()
	eng, err := pim.NewEngine(arch.Default(), pim.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	q, err := quant.New(quant.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewPIM(eng, data, q, data.N)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDBSCANRecoversClustersAndNoise(t *testing.T) {
	data, truth, noise := clusteredData(t, 400)
	res, err := New(data).Run(0.25, 4, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 4 {
		t.Fatalf("found %d clusters, want 4", res.Clusters)
	}
	for _, i := range noise {
		if res.Labels[i] != Noise {
			t.Errorf("planted noise point %d labeled %d", i, res.Labels[i])
		}
	}
	// Agreement with generating labels (excluding planted noise).
	var a, b []int
	for i := range res.Labels {
		if res.Labels[i] != Noise {
			a = append(a, res.Labels[i])
			b = append(b, truth[i])
		}
	}
	ari, err := eval.AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.95 {
		t.Fatalf("ARI vs generating labels = %.3f, want ≥ 0.95", ari)
	}
}

func TestDBSCANPIMIdentical(t *testing.T) {
	data, _, _ := clusteredData(t, 300)
	mHost, mPIM := arch.NewMeter(), arch.NewMeter()
	want, err := New(data).Run(0.25, 4, mHost)
	if err != nil {
		t.Fatal(err)
	}
	got, err := newPIMClusterer(t, data).Run(0.25, 4, mPIM)
	if err != nil {
		t.Fatal(err)
	}
	if got.Clusters != want.Clusters || got.CorePoints != want.CorePoints {
		t.Fatalf("PIM summary %+v, host %+v", got, want)
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("labels diverge at point %d: %d vs %d", i, got.Labels[i], want.Labels[i])
		}
	}
	if mPIM.Get(arch.FuncED).Calls >= mHost.Get(arch.FuncED).Calls {
		t.Fatalf("PIM DBSCAN computed %d exact distances vs host %d — no pruning",
			mPIM.Get(arch.FuncED).Calls, mHost.Get(arch.FuncED).Calls)
	}
}

func TestDBSCANDegenerateParams(t *testing.T) {
	data, _, _ := clusteredData(t, 60)
	c := New(data)
	if _, err := c.Run(0, 4, arch.NewMeter()); err == nil {
		t.Fatal("eps=0 must be rejected")
	}
	if _, err := c.Run(0.2, 0, arch.NewMeter()); err == nil {
		t.Fatal("minPts=0 must be rejected")
	}
	// Huge eps: one cluster, everything core.
	res, err := c.Run(100, 1, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 || res.CorePoints != data.N {
		t.Fatalf("huge eps: %+v", res)
	}
	// Tiny eps with high minPts: all noise.
	res, err = c.Run(1e-9, 5, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 0 {
		t.Fatalf("tiny eps found %d clusters", res.Clusters)
	}
}
