package profile

import (
	"math"
	"strings"
	"testing"

	"pimmine/internal/arch"
)

func sampleMeter() *arch.Meter {
	m := arch.NewMeter()
	ed := m.C(arch.FuncED)
	ed.Ops, ed.SeqBytes = 1_000_000, 4_000_000
	lb := m.C("LBFNN-7")
	lb.Ops, lb.SeqBytes = 100_000, 400_000
	other := m.C(arch.FuncOther)
	other.Ops = 50_000
	return m
}

func TestSharesSumToOne(t *testing.T) {
	r := New("FNN", arch.Default(), sampleMeter())
	var hw float64
	for _, v := range r.HardwareShares() {
		hw += v
	}
	if math.Abs(hw-1) > 1e-9 {
		t.Fatalf("hardware shares sum to %v", hw)
	}
	var fn float64
	for _, v := range r.FunctionShares() {
		fn += v
	}
	if math.Abs(fn-1) > 1e-9 {
		t.Fatalf("function shares sum to %v", fn)
	}
}

func TestFunctionsSortedByTime(t *testing.T) {
	r := New("FNN", arch.Default(), sampleMeter())
	names := r.Functions()
	if names[0] != arch.FuncED {
		t.Fatalf("largest function = %q, want ED", names[0])
	}
	for i := 1; i < len(names); i++ {
		if r.PerFunc[names[i]].Total() > r.PerFunc[names[i-1]].Total() {
			t.Fatal("Functions not sorted by descending time")
		}
	}
}

func TestBottleneckSkipsOther(t *testing.T) {
	m := arch.NewMeter()
	m.C(arch.FuncOther).Ops = 1_000_000
	m.C("LBSM").Ops = 10
	r := New("x", arch.Default(), m)
	if got := r.Bottleneck(); got != "LBSM" {
		t.Fatalf("Bottleneck = %q, want LBSM", got)
	}
}

func TestPIMOracle(t *testing.T) {
	r := New("FNN", arch.Default(), sampleMeter())
	total := r.Total.Total()
	oracle := r.PIMOracle(arch.FuncED, "LBFNN-7")
	want := r.PerFunc[arch.FuncOther].Total()
	if math.Abs(oracle-want) > 1e-6 {
		t.Fatalf("PIMOracle = %v, want %v (Other only)", oracle, want)
	}
	if oracle >= total {
		t.Fatal("oracle must be below total")
	}
	if auto := r.PIMOracleAuto(); math.Abs(auto-oracle) > 1e-6 {
		t.Fatalf("PIMOracleAuto = %v, want %v", auto, oracle)
	}
	// Unknown functions are ignored, never negative.
	if r.PIMOracle("nope") != total {
		t.Fatal("unknown function must not change the oracle")
	}
}

func TestPIMAware(t *testing.T) {
	for name, want := range map[string]bool{
		"ED": true, "HD": true, "CS": true, "PCC": true,
		"LBFNN-7": true, "LBPIM-FNN-105": true, "UBPIM-CS": true,
		"Other": false, "bound-update": false,
	} {
		if PIMAware(name) != want {
			t.Errorf("PIMAware(%q) = %v, want %v", name, !want, want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := New("FNN", arch.Default(), sampleMeter()).String()
	for _, want := range []string{"FNN", "ED", "Tcache"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

func TestEmptyMeter(t *testing.T) {
	r := New("empty", arch.Default(), arch.NewMeter())
	if len(r.HardwareShares()) != 0 || len(r.FunctionShares()) != 0 {
		t.Fatal("empty meter must produce empty shares, not NaNs")
	}
}
