// Package profile implements §IV of the paper: algorithm profiling by
// hardware component (Eq. 1) and by function, and the PIM-oracle estimate
// (Eq. 2) that predicts the best-case gain of offloading a set of
// functions to PIM.
//
// The paper uses PAPI hardware counters on a real Xeon; here the same
// decomposition is produced from the analytic model of internal/arch over
// the activity meters the algorithms populate (see DESIGN.md §2 for the
// substitution rationale).
package profile

import (
	"fmt"
	"sort"
	"strings"

	"pimmine/internal/arch"
)

// Report is the profile of one algorithm run.
type Report struct {
	Algorithm string
	Cfg       arch.Config
	PerFunc   map[string]arch.Breakdown
	Total     arch.Breakdown
}

// New profiles a meter under a hardware configuration.
func New(algorithm string, cfg arch.Config, meter *arch.Meter) *Report {
	per, total := cfg.TimeMeter(meter)
	return &Report{Algorithm: algorithm, Cfg: cfg, PerFunc: per, Total: total}
}

// Component labels of Eq. 1 in presentation order.
var Components = []string{"Tc", "Tcache", "TALU", "TBr", "TFe", "TPIM"}

// HardwareShares returns each Eq. 1 component's fraction of total modeled
// time — the Fig 5 bars.
func (r *Report) HardwareShares() map[string]float64 {
	t := r.Total.Total()
	if t == 0 {
		return map[string]float64{}
	}
	return map[string]float64{
		"Tc":     r.Total.Tc / t,
		"Tcache": r.Total.Tcache / t,
		"TALU":   r.Total.TALU / t,
		"TBr":    r.Total.TBr / t,
		"TFe":    r.Total.TFe / t,
		"TPIM":   r.Total.TPIM / t,
	}
}

// FunctionShares returns each function's fraction of total modeled time —
// the Fig 6 bars.
func (r *Report) FunctionShares() map[string]float64 {
	t := r.Total.Total()
	out := make(map[string]float64, len(r.PerFunc))
	if t == 0 {
		return out
	}
	for name, b := range r.PerFunc {
		out[name] = b.Total() / t
	}
	return out
}

// Functions returns the profiled function names sorted by descending time.
func (r *Report) Functions() []string {
	names := make([]string, 0, len(r.PerFunc))
	for n := range r.PerFunc {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		ti, tj := r.PerFunc[names[i]].Total(), r.PerFunc[names[j]].Total()
		if ti != tj {
			return ti > tj
		}
		return names[i] < names[j]
	})
	return names
}

// Bottleneck returns the most expensive function other than "Other" — the
// candidate for PIM offloading (§III-B).
func (r *Report) Bottleneck() string {
	for _, n := range r.Functions() {
		if n != arch.FuncOther {
			return n
		}
	}
	return ""
}

// PIMOracle evaluates Eq. 2: the theoretical optimal time if the named
// functions' cost dropped to zero,
//
//	T_PIM-oracle = T_total − Σ_{f ∈ F} T_f
//
// returning nanoseconds. It is a lower bound for any PIM implementation
// of the algorithm.
func (r *Report) PIMOracle(funcs ...string) float64 {
	t := r.Total.Total()
	for _, f := range funcs {
		if b, ok := r.PerFunc[f]; ok {
			t -= b.Total()
		}
	}
	if t < 0 {
		return 0
	}
	return t
}

// PIMOracleAuto applies Eq. 2 to every function that is PIM-aware by
// naming convention: exact similarity functions (ED/HD/CS/PCC) and every
// bound function (LB*/UB*) decompose per Table 4; "Other" and
// bound-maintenance do not.
func (r *Report) PIMOracleAuto() float64 {
	var fs []string
	for name := range r.PerFunc {
		if PIMAware(name) {
			fs = append(fs, name)
		}
	}
	return r.PIMOracle(fs...)
}

// PIMAware reports whether a profiled function name denotes a PIM-aware
// function in the §V-A sense.
func PIMAware(name string) bool {
	switch name {
	case arch.FuncED, arch.FuncHD, arch.FuncCS, arch.FuncPCC:
		return true
	}
	return strings.HasPrefix(name, "LB") || strings.HasPrefix(name, "UB")
}

// String renders the profile as a small table (ms and % per function,
// then the hardware-component shares).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile of %s: total %.3f ms\n", r.Algorithm, r.Total.Total()/1e6)
	for _, name := range r.Functions() {
		bd := r.PerFunc[name]
		fmt.Fprintf(&b, "  %-16s %10.3f ms  %5.1f%%\n", name, bd.Total()/1e6, 100*bd.Total()/r.Total.Total())
	}
	shares := r.HardwareShares()
	b.WriteString("  components:")
	for _, c := range Components {
		fmt.Fprintf(&b, " %s=%.1f%%", c, 100*shares[c])
	}
	b.WriteString("\n")
	return b.String()
}
