package netserve_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"pimmine/internal/cluster"
	"pimmine/internal/netserve"
	"pimmine/internal/quant"
	"pimmine/internal/resilience"
	"pimmine/internal/serve"
	"pimmine/internal/standing"
)

// TestStatusMapping pins the full error-chain → status-code contract,
// matching through wrapped chains exactly as the server does. Every
// facade-visible sentinel appears; the engine-timeout vs caller-deadline
// distinction (both match context.DeadlineExceeded, only one is the
// engine's fault) is the row most worth guarding.
func TestStatusMapping(t *testing.T) {
	t.Parallel()
	wrap := func(err error) error { return fmt.Errorf("handler: %w", err) }
	cases := []struct {
		name   string
		err    error
		status int
		code   string
		retry  bool
	}{
		{"bad request", wrap(netserve.ErrBadRequest), http.StatusBadRequest, "bad_request", false},
		{"NaN query", wrap(quant.ErrNotFinite), http.StatusBadRequest, "bad_request", false},
		{"out-of-range query", wrap(quant.ErrOutOfRange), http.StatusBadRequest, "bad_request", false},
		{"mode without router", wrap(serve.ErrNoRouter), http.StatusBadRequest, "no_router", false},
		{"bad subscription", wrap(standing.ErrBadSubscription), http.StatusBadRequest, "bad_subscription", false},
		{"standing closed", wrap(standing.ErrClosed), http.StatusServiceUnavailable, "standing_closed", false},
		{"quota", wrap(resilience.ErrQuotaExceeded), http.StatusTooManyRequests, "quota_exceeded", true},
		{"admission reject", wrap(resilience.ErrOverloaded), http.StatusTooManyRequests, "overloaded", true},
		{"deadline shed", wrap(resilience.ErrShedDeadline), http.StatusTooManyRequests, "shed_deadline", true},
		{"circuit open", wrap(resilience.ErrCircuitOpen), http.StatusServiceUnavailable, "circuit_open", true},
		{"cluster no quorum", wrap(cluster.ErrNoQuorum), http.StatusServiceUnavailable, "no_quorum", true},
		{"cluster rebalancing", wrap(cluster.ErrRebalancing), http.StatusServiceUnavailable, "rebalancing", true},
		{"cluster node down", wrap(cluster.ErrNodeDown), http.StatusServiceUnavailable, "node_down", false},
		{"draining", wrap(netserve.ErrDraining), http.StatusServiceUnavailable, "draining", false},
		{"engine closed", wrap(serve.ErrClosed), http.StatusServiceUnavailable, "engine_closed", false},
		// serve.ErrQueryTimeout unwraps to context.DeadlineExceeded; the
		// mapping must still call it the engine's timeout, not the
		// caller's.
		{"engine query timeout", wrap(serve.ErrQueryTimeout), http.StatusGatewayTimeout, "query_timeout", false},
		{"caller deadline", wrap(context.DeadlineExceeded), http.StatusGatewayTimeout, "deadline_exceeded", false},
		{"client canceled", wrap(context.Canceled), netserve.StatusClientClosed, "client_closed", false},
		{"unmapped error", errors.New("novel failure"), http.StatusInternalServerError, "internal", false},
		{"nil-adjacent unknown", wrap(errors.New("wrapped novel")), http.StatusInternalServerError, "internal", false},
	}
	for _, tc := range cases {
		v := netserve.VerdictFor(tc.err)
		if v.Status != tc.status || v.Code != tc.code || v.RetryAfter != tc.retry {
			t.Errorf("%s: VerdictFor = {%d %q retry=%v}, want {%d %q retry=%v}",
				tc.name, v.Status, v.Code, v.RetryAfter, tc.status, tc.code, tc.retry)
		}
	}

	// The engine timeout must also keep matching the generic deadline —
	// callers with pre-existing errors.Is(err, context.DeadlineExceeded)
	// checks rely on it — while mapping to its own wire verdict.
	if !errors.Is(serve.ErrQueryTimeout, context.DeadlineExceeded) {
		t.Fatal("serve.ErrQueryTimeout no longer matches context.DeadlineExceeded")
	}
}

// TestMappedSentinelsComplete guards the mapping against sentinels added
// without a wire verdict: every sentinel the serving stack exports must
// be present in MappedSentinels, and each must map to itself (not fall
// through to a broader row first).
func TestMappedSentinelsComplete(t *testing.T) {
	t.Parallel()
	// The serving stack's full rejection surface. A new sentinel added to
	// resilience/serve/netserve must be added here AND to the mapping in
	// status.go; forgetting the latter fails the have-check below.
	want := []error{
		netserve.ErrBadRequest,
		quant.ErrNotFinite,
		quant.ErrOutOfRange,
		serve.ErrNoRouter,
		standing.ErrBadSubscription,
		resilience.ErrQuotaExceeded,
		resilience.ErrOverloaded,
		resilience.ErrShedDeadline,
		resilience.ErrCircuitOpen,
		cluster.ErrNoQuorum,
		cluster.ErrRebalancing,
		cluster.ErrNodeDown,
		netserve.ErrDraining,
		serve.ErrClosed,
		standing.ErrClosed,
		serve.ErrQueryTimeout,
		context.DeadlineExceeded,
		context.Canceled,
	}
	have := netserve.MappedSentinels()
	for _, w := range want {
		found := false
		for _, h := range have {
			if errors.Is(w, h) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("sentinel %v has no wire mapping", w)
		}
	}
	if len(have) != len(want) {
		t.Errorf("MappedSentinels has %d rows, this test covers %d — keep them in lockstep", len(have), len(want))
	}
	// No sentinel may be shadowed into a 500.
	for _, h := range have {
		if v := netserve.VerdictFor(fmt.Errorf("deep: %w", h)); v.Status == http.StatusInternalServerError {
			t.Errorf("mapped sentinel %v still renders 500", h)
		}
	}
}
