package netserve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"pimmine/internal/dataset"
	"pimmine/internal/netserve"
	"pimmine/internal/route"
	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

// clusteredRows returns a dataset with rows grouped by mixture
// component so the sharded engine's routing tier has shards to skip.
func clusteredRows(t *testing.T, n, d, clusters int, seed int64) *vec.Matrix {
	t.Helper()
	prof := dataset.Profile{Name: "net-route", FullN: n, D: d, Clusters: clusters, Correlation: 0.4, Spread: 0.08}
	ds := dataset.Generate(prof, n, seed)
	m := vec.NewMatrix(n, d)
	i := 0
	for c := 0; c < clusters; c++ {
		for r := 0; r < n; r++ {
			if ds.Labels[r] == c {
				copy(m.Row(i), ds.X.Row(r))
				i++
			}
		}
	}
	return m
}

// routedServer builds a routed engine behind an HTTP test server plus an
// unrouted twin over the same data for ground truth.
func routedServer(t *testing.T, cfg route.Config) (*httptest.Server, *serve.Engine, *vec.Matrix) {
	t.Helper()
	data := clusteredRows(t, 300, 16, 4, 31)
	r, err := route.NewEven(cfg, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(data, serve.Options{Shards: 4, Router: r})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := serve.New(data, serve.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netserve.New(netserve.Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, plain, data
}

// TestWireRoutedExactBitIdentical proves the wire's mode=exact answers
// are bit-identical to an unrouted engine over the same data, and that
// the response's routed annotation reports real shard skipping.
func TestWireRoutedExactBitIdentical(t *testing.T) {
	t.Parallel()
	ts, plain, data := routedServer(t, route.Config{Seed: 5})

	const k = 8
	skipped := 0
	for i := 0; i < 10; i++ {
		q := data.Row((i * 37) % data.N)
		want, err := plain.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/search", netserve.QueryRequest{
			Tenant: "rt", Query: q, K: k, Mode: "exact",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, body)
		}
		var qr netserve.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if got := renderWire(qr.Neighbors); got != renderDirect(want.Neighbors) {
			t.Fatalf("query %d: wire exact-routed differs from unrouted direct\nwire     %s\nunrouted %s",
				i, got, renderDirect(want.Neighbors))
		}
		if qr.Routed == nil || qr.Routed.Mode != "exact" {
			t.Fatalf("query %d: routed annotation missing or wrong: %+v", i, qr.Routed)
		}
		if qr.Routed.EstRecall != 1 {
			t.Fatalf("query %d: exact mode est_recall %v", i, qr.Routed.EstRecall)
		}
		skipped += qr.Routed.Skipped
	}
	if skipped == 0 {
		t.Fatal("wire exact routing never skipped a shard on clustered data")
	}
}

// TestWireRoutedApproxAnnotates checks mode=approx on the wire: the
// routed block carries the approximate mode and a recall estimate no
// lower than the configured target, and batch lines carry it too.
func TestWireRoutedApproxAnnotates(t *testing.T) {
	t.Parallel()
	const target = 0.9
	ts, _, data := routedServer(t, route.Config{Mode: route.ModeApprox, Recall: target, Seed: 5})

	const k = 8
	q := data.Row(9)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/search", netserve.QueryRequest{
		Tenant: "rt", Query: q, K: k, Mode: "approx",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr netserve.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Routed == nil || qr.Routed.Mode != "approx" {
		t.Fatalf("routed annotation missing or wrong: %+v", qr.Routed)
	}
	if qr.Routed.EstRecall < target {
		t.Fatalf("est_recall %v below target %v", qr.Routed.EstRecall, target)
	}

	// The batch endpoint threads the mode through each line.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/search/batch", netserve.BatchRequest{
		Tenant: "rt", Queries: [][]float64{data.Row(3), data.Row(80)}, K: k, Mode: "approx",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
}

// TestWireModeStrictness pins the wire contract's failure modes: an
// unknown mode string is a 400 bad_request on both endpoints, and an
// explicit mode against a router-less engine is a 400 no_router.
func TestWireModeStrictness(t *testing.T) {
	t.Parallel()
	ts, _, data := routedServer(t, route.Config{Seed: 5})

	for _, bad := range []string{"fuzzy", "EXACT", " approx", "approximate"} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/search", netserve.QueryRequest{
			Tenant: "rt", Query: data.Row(0), K: 3, Mode: bad,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("mode %q: status %d, want 400: %s", bad, resp.StatusCode, body)
		}
		var e netserve.ErrorBody
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatal(err)
		}
		if e.Code != "bad_request" {
			t.Fatalf("mode %q: code %q, want bad_request", bad, e.Code)
		}
		resp, _ = postJSON(t, ts.Client(), ts.URL+"/v1/search/batch", netserve.BatchRequest{
			Tenant: "rt", Queries: [][]float64{data.Row(0)}, K: 3, Mode: bad,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("batch mode %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// A valid explicit mode against an engine without a router: the
	// request is well-formed but asks for a capability this deployment
	// does not have — 400 no_router, per the status contract.
	plainEng, err := serve.New(clusteredRows(t, 60, 8, 2, 7), serve.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	plainSrv, err := netserve.New(netserve.Options{Engine: plainEng})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(plainSrv)
	defer pts.Close()
	resp, body := postJSON(t, pts.Client(), pts.URL+"/v1/search", netserve.QueryRequest{
		Tenant: "rt", Query: make([]float64, 8), K: 3, Mode: "exact",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no-router exact: status %d, want 400: %s", resp.StatusCode, body)
	}
	var e netserve.ErrorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "no_router" {
		t.Fatalf("no-router code %q, want no_router", e.Code)
	}
}

// TestInfoAdvertisesRouting checks GET /v1/info: a routed deployment
// advertises its modes and recall target; a router-less one omits the
// block entirely (clients probe it before sending an explicit mode).
func TestInfoAdvertisesRouting(t *testing.T) {
	t.Parallel()
	ts, _, _ := routedServer(t, route.Config{Mode: route.ModeApprox, Recall: 0.92, Seed: 5})
	resp, err := ts.Client().Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var info map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	routing, ok := info["routing"].(map[string]any)
	if !ok {
		t.Fatalf("routed /v1/info has no routing block: %v", info)
	}
	if routing["default_mode"] != "approx" {
		t.Fatalf("default_mode = %v", routing["default_mode"])
	}
	if routing["recall_target"] != 0.92 {
		t.Fatalf("recall_target = %v", routing["recall_target"])
	}

	plainEng, err := serve.New(clusteredRows(t, 60, 8, 2, 7), serve.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	plainSrv, err := netserve.New(netserve.Options{Engine: plainEng})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(plainSrv)
	defer pts.Close()
	resp, err = pts.Client().Get(pts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	info = map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := info["routing"]; ok {
		t.Fatal("router-less /v1/info advertises routing")
	}
}
