//go:build race

package netserve_test

import "time"

// Under -race everything is ~5-20x slower; scale the paced service
// times and measurement windows so backlogs still form.
const raceScale time.Duration = 6
