package netserve_test

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"pimmine/internal/netserve"
	"pimmine/internal/quant"
)

// TestDecodeQueryRequest pins the decoder's typed rejections on the
// interesting hand-written inputs (the fuzzer then explores around
// them).
func TestDecodeQueryRequest(t *testing.T) {
	t.Parallel()
	const dims, maxK = 3, 16
	cases := []struct {
		name    string
		body    string
		wantErr error // nil = must decode
	}{
		{"valid", `{"tenant":"a","query":[0.1,0.2,0.3],"k":5}`, nil},
		{"valid boundary", `{"query":[0,1,0.5],"k":16}`, nil},
		{"malformed json", `{"query":[0.1`, netserve.ErrBadRequest},
		{"trailing garbage", `{"query":[0.1,0.2,0.3],"k":1}{"x":1}`, netserve.ErrBadRequest},
		{"unknown field", `{"query":[0.1,0.2,0.3],"k":1,"mode":"turbo"}`, netserve.ErrBadRequest},
		{"wrong dims", `{"query":[0.1,0.2],"k":1}`, netserve.ErrBadRequest},
		{"missing query", `{"k":1}`, netserve.ErrBadRequest},
		{"k zero", `{"query":[0.1,0.2,0.3],"k":0}`, netserve.ErrBadRequest},
		{"k oversize", `{"query":[0.1,0.2,0.3],"k":17}`, netserve.ErrBadRequest},
		{"out of range", `{"query":[0.1,2.5,0.3],"k":1}`, quant.ErrOutOfRange},
		{"negative value", `{"query":[-0.1,0.2,0.3],"k":1}`, quant.ErrOutOfRange},
		{"json NaN literal", `{"query":[NaN,0.2,0.3],"k":1}`, netserve.ErrBadRequest},
		{"json Inf exponent", `{"query":[1e999,0.2,0.3],"k":1}`, netserve.ErrBadRequest},
	}
	for _, tc := range cases {
		req, err := netserve.DecodeQueryRequest([]byte(tc.body), dims, maxK)
		if tc.wantErr == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: err = %v, want chain through %v", tc.name, err, tc.wantErr)
		}
		// Every rejection must carry the wire sentinel so the server can
		// map it to 400.
		if !errors.Is(err, netserve.ErrBadRequest) {
			t.Errorf("%s: rejection %v does not wrap ErrBadRequest", tc.name, err)
		}
		if req != nil {
			t.Errorf("%s: rejected decode still returned a request", tc.name)
		}
	}

	// Batch decoder: same per-query contract plus the batch cap.
	if _, err := netserve.DecodeBatchRequest([]byte(`{"queries":[[0.1,0.2,0.3],[0.4,0.5,0.6]],"k":2}`), dims, maxK, 8); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if _, err := netserve.DecodeBatchRequest([]byte(`{"queries":[],"k":2}`), dims, maxK, 8); !errors.Is(err, netserve.ErrBadRequest) {
		t.Fatalf("empty batch err = %v", err)
	}
	long := `{"queries":[` + strings.Repeat(`[0.1,0.2,0.3],`, 8) + `[0.1,0.2,0.3]],"k":2}`
	if _, err := netserve.DecodeBatchRequest([]byte(long), dims, maxK, 8); !errors.Is(err, netserve.ErrBadRequest) {
		t.Fatalf("oversize batch err = %v", err)
	}
}

// FuzzDecodeQueryRequest fuzzes the wire decoder: whatever the bytes,
// it must never panic, every rejection must wrap ErrBadRequest (the
// typed 400), and every accepted request must satisfy the validated
// invariants — dims match, k in range, all values finite in [0,1] — and
// re-encode/decode to the same value.
func FuzzDecodeQueryRequest(f *testing.F) {
	f.Add([]byte(`{"tenant":"a","query":[0.1,0.2,0.3],"k":5}`))
	f.Add([]byte(`{"query":[0,1,0.5],"k":1}`))
	f.Add([]byte(`{"query":[0.1,2.5,0.3],"k":1}`))
	f.Add([]byte(`{"query":[1e999,0,0],"k":1}`))
	f.Add([]byte(`{"query":[0.1`))
	f.Add([]byte(`{"k":17,"query":[0.1,0.2,0.3]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		const dims, maxK = 3, 16
		req, err := netserve.DecodeQueryRequest(data, dims, maxK)
		if err != nil {
			if !errors.Is(err, netserve.ErrBadRequest) {
				t.Fatalf("rejection without ErrBadRequest chain: %v", err)
			}
			if req != nil {
				t.Fatal("error with non-nil request")
			}
			return
		}
		if len(req.Query) != dims {
			t.Fatalf("accepted query with %d dims", len(req.Query))
		}
		if req.K < 1 || req.K > maxK {
			t.Fatalf("accepted k=%d", req.K)
		}
		for _, v := range req.Query {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
				t.Fatalf("accepted out-of-contract value %v", v)
			}
		}
		// Round-trip: an accepted request re-encodes to a body the decoder
		// accepts identically.
		enc, merr := json.Marshal(req)
		if merr != nil {
			t.Fatalf("re-encode: %v", merr)
		}
		again, aerr := netserve.DecodeQueryRequest(enc, dims, maxK)
		if aerr != nil {
			t.Fatalf("re-decode of accepted request failed: %v", aerr)
		}
		if again.Tenant != req.Tenant || again.K != req.K || len(again.Query) != len(req.Query) {
			t.Fatal("round-trip changed the request")
		}
		for i := range req.Query {
			if math.Float64bits(again.Query[i]) != math.Float64bits(req.Query[i]) {
				t.Fatalf("round-trip changed query[%d]: %x -> %x", i,
					math.Float64bits(req.Query[i]), math.Float64bits(again.Query[i]))
			}
		}
	})
}
