// Typed-sentinel → HTTP status mapping. Every error the serving stack
// can produce has a deliberate wire verdict; anything unmapped is a 500
// so a future sentinel added without a mapping is loudly visible (the
// table-driven status test walks MappedSentinels for exactly that).
package netserve

import (
	"context"
	"errors"
	"net/http"

	"pimmine/internal/cluster"
	"pimmine/internal/quant"
	"pimmine/internal/resilience"
	"pimmine/internal/serve"
	"pimmine/internal/standing"
)

// ErrDraining reports a request that arrived after graceful drain
// began: in-flight work completes, new arrivals get an immediate 503 so
// load balancers fail over instead of queueing into a dying process.
var ErrDraining = errors.New("netserve: server draining")

// StatusClientClosed is nginx's non-standard 499 "client closed
// request": the caller canceled, nothing to retry.
const StatusClientClosed = 499

// Verdict is one error's wire mapping.
type Verdict struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error name in the JSON body.
	Code string
	// RetryAfter reports whether the response carries a Retry-After
	// computed from the retry budget's jittered backoff.
	RetryAfter bool
}

// mapping is one sentinel's row; order matters — more specific chains
// first (serve.ErrQueryTimeout unwraps to context.DeadlineExceeded, so
// it must be matched before the generic deadline row).
type mapping struct {
	sentinel error
	verdict  Verdict
}

// orderedMappings is the wire contract. 4xx/5xx semantics:
//
//	400  the request itself is malformed (bad JSON, dims, k, NaN/Inf)
//	429  the request was fine but refused by quota, admission or shed —
//	     retryable after backing off (Retry-After is set)
//	499  the client went away first
//	503  the server is going away (drain, closed engine) — fail over
//	504  the query was admitted but its deadline elapsed mid-flight
func orderedMappings() []mapping {
	return []mapping{
		{ErrBadRequest, Verdict{http.StatusBadRequest, "bad_request", false}},
		{quant.ErrNotFinite, Verdict{http.StatusBadRequest, "bad_request", false}},
		{quant.ErrOutOfRange, Verdict{http.StatusBadRequest, "bad_request", false}},
		// An explicit routing mode against an engine without a router is a
		// client error: the client asked for a capability this deployment
		// does not have (GET /v1/info advertises it).
		{serve.ErrNoRouter, Verdict{http.StatusBadRequest, "no_router", false}},
		{standing.ErrBadSubscription, Verdict{http.StatusBadRequest, "bad_subscription", false}},
		{resilience.ErrQuotaExceeded, Verdict{http.StatusTooManyRequests, "quota_exceeded", true}},
		{resilience.ErrOverloaded, Verdict{http.StatusTooManyRequests, "overloaded", true}},
		{resilience.ErrShedDeadline, Verdict{http.StatusTooManyRequests, "shed_deadline", true}},
		{resilience.ErrCircuitOpen, Verdict{http.StatusServiceUnavailable, "circuit_open", true}},
		// Cluster degradation: no-quorum and rebalancing heal via
		// anti-entropy repair, so retrying is honest advice; a node the
		// operator addressed directly being down is not something a
		// client retry fixes, so no Retry-After there.
		{cluster.ErrNoQuorum, Verdict{http.StatusServiceUnavailable, "no_quorum", true}},
		{cluster.ErrRebalancing, Verdict{http.StatusServiceUnavailable, "rebalancing", true}},
		{cluster.ErrNodeDown, Verdict{http.StatusServiceUnavailable, "node_down", false}},
		{ErrDraining, Verdict{http.StatusServiceUnavailable, "draining", false}},
		{serve.ErrClosed, Verdict{http.StatusServiceUnavailable, "engine_closed", false}},
		{standing.ErrClosed, Verdict{http.StatusServiceUnavailable, "standing_closed", false}},
		// ErrQueryTimeout unwraps to context.DeadlineExceeded; its row must
		// come first or every engine timeout would report as the generic
		// caller deadline.
		{serve.ErrQueryTimeout, Verdict{http.StatusGatewayTimeout, "query_timeout", false}},
		{context.DeadlineExceeded, Verdict{http.StatusGatewayTimeout, "deadline_exceeded", false}},
		{context.Canceled, Verdict{StatusClientClosed, "client_closed", false}},
	}
}

// MappedSentinels returns every sentinel with an explicit wire verdict,
// in matching order. The status-mapping test walks this list against
// the facade's exported sentinels so a sentinel added without a wire
// mapping fails loudly instead of silently becoming a 500.
func MappedSentinels() []error {
	ms := orderedMappings()
	out := make([]error, len(ms))
	for i, m := range ms {
		out[i] = m.sentinel
	}
	return out
}

// VerdictFor maps an error chain to its wire verdict via errors.Is in
// declaration order; unmapped errors are a 500 "internal".
func VerdictFor(err error) Verdict {
	for _, m := range orderedMappings() {
		if errors.Is(err, m.sentinel) {
			return m.verdict
		}
	}
	return Verdict{http.StatusInternalServerError, "internal", false}
}
