package netserve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/knn"
	"pimmine/internal/netserve"
	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

// buildEngine makes a small sharded engine over a Table 6 dataset.
func buildEngine(t *testing.T, n, shards int, opts serve.Options) (*serve.Engine, *dataset.Dataset) {
	t.Helper()
	prof, err := dataset.ByName("MSD")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Generate(prof, n, 11)
	opts.Shards = shards
	eng, err := serve.New(ds.X, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ds
}

// renderDirect and renderWire print neighbors with float64 bits in hex,
// so "byte-identical to the direct facade call" is checked at full
// precision — JSON's shortest-form float64 encoding round-trips
// bit-exactly, and these renders prove the wire kept every bit.
func renderDirect(nn []vec.Neighbor) string {
	var b strings.Builder
	for _, n := range nn {
		fmt.Fprintf(&b, "%d:%016x;", n.Index, math.Float64bits(n.Dist))
	}
	return b.String()
}

func renderWire(nn []netserve.NeighborWire) string {
	var b strings.Builder
	for _, n := range nn {
		fmt.Fprintf(&b, "%d:%016x;", n.Index, math.Float64bits(n.Dist))
	}
	return b.String()
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestWireDifferential proves wire results are byte-identical to direct
// facade calls: the same engine answers over HTTP and in-process, and
// every neighbor must match down to the float64 bit pattern, for the
// single endpoint and for every line of a streaming batch.
func TestWireDifferential(t *testing.T) {
	t.Parallel()
	eng, ds := buildEngine(t, 300, 3, serve.Options{})
	srv, err := netserve.New(netserve.Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const k, nq = 7, 6
	queries := ds.Queries(nq, 21)
	direct := make([]string, nq)
	for i := 0; i < nq; i++ {
		res, err := eng.Search(context.Background(), queries.Row(i), k)
		if err != nil {
			t.Fatal(err)
		}
		direct[i] = renderDirect(res.Neighbors)
	}

	// Single-query endpoint.
	for i := 0; i < nq; i++ {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/search", netserve.QueryRequest{
			Tenant: "diff", Query: queries.Row(i), K: k,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, data)
		}
		var qr netserve.QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got := renderWire(qr.Neighbors); got != direct[i] {
			t.Fatalf("query %d: wire differs from direct call\nwire   %s\ndirect %s", i, got, direct[i])
		}
	}

	// Streaming batch: lines must arrive in query order, each
	// bit-identical to the direct call.
	qs := make([][]float64, nq)
	for i := range qs {
		qs[i] = queries.Row(i)
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/search/batch", netserve.BatchRequest{
		Tenant: "diff", Queries: qs, K: k,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("batch content type %q", ct)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	for sc.Scan() {
		var bl netserve.BatchLine
		if err := json.Unmarshal(sc.Bytes(), &bl); err != nil {
			t.Fatalf("batch line %d: %v", line, err)
		}
		if bl.Index != line {
			t.Fatalf("batch line %d carries index %d (order broken)", line, bl.Index)
		}
		if bl.Error != nil || bl.Result == nil {
			t.Fatalf("batch line %d: unexpected error %+v", line, bl.Error)
		}
		if got := renderWire(bl.Result.Neighbors); got != direct[line] {
			t.Fatalf("batch line %d differs from direct call\nwire   %s\ndirect %s", line, got, direct[line])
		}
		line++
	}
	if line != nq {
		t.Fatalf("batch stream had %d lines, want %d", line, nq)
	}
}

// TestWireDifferentialH2C repeats the single-query differential over
// cleartext HTTP/2: same engine, same bits, multiplexed protocol.
func TestWireDifferentialH2C(t *testing.T) {
	t.Parallel()
	eng, ds := buildEngine(t, 200, 2, serve.Options{})
	srv, err := netserve.New(netserve.Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	hs := srv.NewHTTPServer("")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	p := new(http.Protocols)
	p.SetUnencryptedHTTP2(true)
	client := &http.Client{Transport: &http.Transport{Protocols: p}}

	hresp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.ProtoMajor != 2 {
		t.Fatalf("healthz served over %s, want HTTP/2 (body %s)", hresp.Proto, hbody)
	}

	const k = 5
	queries := ds.Queries(3, 31)
	for i := 0; i < queries.N; i++ {
		res, err := eng.Search(context.Background(), queries.Row(i), k)
		if err != nil {
			t.Fatal(err)
		}
		resp, data := postJSON(t, client, base+"/v1/search", netserve.QueryRequest{Query: queries.Row(i), K: k})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("h2c query %d: status %d: %s", i, resp.StatusCode, data)
		}
		if resp.ProtoMajor != 2 {
			t.Fatalf("h2c query %d served over %s", i, resp.Proto)
		}
		var qr netserve.QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatal(err)
		}
		if got, want := renderWire(qr.Neighbors), renderDirect(res.Neighbors); got != want {
			t.Fatalf("h2c query %d: wire differs from direct\nwire   %s\ndirect %s", i, got, want)
		}
	}
}

// TestQuotaRetryAfter drives a provisioned tenant into its token bucket
// over a fake clock: the burst is admitted, the next request is a 429
// quota_exceeded whose Retry-After honestly covers the refill, and
// after the clock advances the tenant is served again. An unprovisioned
// tenant is never quota-limited.
func TestQuotaRetryAfter(t *testing.T) {
	t.Parallel()
	eng, ds := buildEngine(t, 120, 2, serve.Options{})
	now := time.Unix(1000, 0)
	var nowMu sync.Mutex
	clock := func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }
	advance := func(d time.Duration) { nowMu.Lock(); now = now.Add(d); nowMu.Unlock() }
	srv, err := netserve.New(netserve.Options{
		Engine:  eng,
		Tenants: []netserve.TenantConfig{{Name: "metered", Rate: 10, Burst: 2}},
		Now:     clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	q := ds.Queries(1, 41).Row(0)
	post := func(tenant string) (*http.Response, []byte) {
		return postJSON(t, ts.Client(), ts.URL+"/v1/search", netserve.QueryRequest{Tenant: tenant, Query: q, K: 3})
	}
	for i := 0; i < 2; i++ {
		if resp, data := post("metered"); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	resp, data := post("metered")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d: %s", resp.StatusCode, data)
	}
	var eb netserve.ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "quota_exceeded" {
		t.Fatalf("over-quota code = %q", eb.Code)
	}
	if eb.RetryAfterMs <= 0 {
		t.Fatalf("over-quota retry_after_ms = %d, want positive", eb.RetryAfterMs)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("over-quota Retry-After header = %q", ra)
	}
	// An unrelated tenant is not affected by metered's empty bucket.
	if resp, data := post("other"); resp.StatusCode != http.StatusOK {
		t.Fatalf("unmetered tenant status = %d: %s", resp.StatusCode, data)
	}
	// The refill makes the tenant whole again.
	advance(150 * time.Millisecond)
	if resp, data := post("metered"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill status = %d: %s", resp.StatusCode, data)
	}
}

// pacedFactory pins a per-shard service time so drain and fairness
// tests have genuinely in-flight work to race against.
func pacedFactory(delay time.Duration) serve.Factory {
	return func(m *vec.Matrix, _ int) (knn.Searcher, error) {
		inner := knn.NewStandard(m)
		return knn.SearcherFunc("paced", func(q []float64, k int, meter *arch.Meter) []vec.Neighbor {
			time.Sleep(delay)
			return inner.Search(q, k, meter)
		}), nil
	}
}

// TestDrainExactlyOnce hammers the server with concurrent single and
// streaming-batch requests while Drain fires mid-flight, pinning the
// exactly-once dispatch contract: every request either completes fully
// (200 with a complete, valid body — all batch lines present) or is
// refused with the typed 503; nothing is dropped mid-stream, and after
// drain the engine is closed and new arrivals get the draining verdict.
// Run under -race in CI (net-serve-smoke).
func TestDrainExactlyOnce(t *testing.T) {
	t.Parallel()
	eng, ds := buildEngine(t, 80, 2, serve.Options{
		Factory: pacedFactory(raceScale * 200 * time.Microsecond),
	})
	srv, err := netserve.New(netserve.Options{Engine: eng, Slots: 4, MaxQueue: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const k = 3
	queries := ds.Queries(4, 51)
	qs := make([][]float64, queries.N)
	for i := range qs {
		qs[i] = queries.Row(i)
	}

	var stop atomic.Bool
	var completed, drained atomic.Int64
	fail := make(chan string, 32)
	var wg sync.WaitGroup

	single := func(c int) {
		defer wg.Done()
		for !stop.Load() {
			resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/search",
				netserve.QueryRequest{Tenant: fmt.Sprintf("s%d", c), Query: qs[c%len(qs)], K: k})
			switch resp.StatusCode {
			case http.StatusOK:
				var qr netserve.QueryResponse
				if err := json.Unmarshal(data, &qr); err != nil || len(qr.Neighbors) != k {
					fail <- fmt.Sprintf("single: truncated 200 body: %v %s", err, data)
					return
				}
				completed.Add(1)
			case http.StatusServiceUnavailable:
				var eb netserve.ErrorBody
				if err := json.Unmarshal(data, &eb); err != nil || eb.Code != "draining" {
					fail <- fmt.Sprintf("single: 503 without draining verdict: %s", data)
					return
				}
				drained.Add(1)
			default:
				fail <- fmt.Sprintf("single: unexpected status %d: %s", resp.StatusCode, data)
				return
			}
		}
	}
	batch := func(c int) {
		defer wg.Done()
		for !stop.Load() {
			resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/search/batch",
				netserve.BatchRequest{Tenant: fmt.Sprintf("b%d", c), Queries: qs, K: k})
			switch resp.StatusCode {
			case http.StatusOK:
				// Exactly-once: a batch admitted before drain must deliver
				// every line even though drain began mid-stream.
				sc := bufio.NewScanner(bytes.NewReader(data))
				lines := 0
				for sc.Scan() {
					var bl netserve.BatchLine
					if err := json.Unmarshal(sc.Bytes(), &bl); err != nil || bl.Index != lines || bl.Result == nil {
						fail <- fmt.Sprintf("batch: bad line %d: %v %s", lines, err, sc.Bytes())
						return
					}
					lines++
				}
				if lines != len(qs) {
					fail <- fmt.Sprintf("batch: stream truncated at %d/%d lines", lines, len(qs))
					return
				}
				completed.Add(1)
			case http.StatusServiceUnavailable:
				drained.Add(1)
			default:
				fail <- fmt.Sprintf("batch: unexpected status %d: %s", resp.StatusCode, data)
				return
			}
		}
	}
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go single(c)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go batch(c)
	}

	time.Sleep(raceScale * 20 * time.Millisecond)
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	stop.Store(true)
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if completed.Load() == 0 {
		t.Fatal("no request completed before drain — the race never raced")
	}

	// Post-drain: typed verdicts everywhere.
	if _, err := eng.Search(context.Background(), qs[0], k); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("engine after drain err = %v, want ErrClosed", err)
	}
	resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/search",
		netserve.QueryRequest{Query: qs[0], K: k})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain search status = %d: %s", resp.StatusCode, data)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz status = %d", hresp.StatusCode)
	}
	// Drain is idempotent.
	if err := srv.Drain(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}
