// POST /v1/subscribe: standing queries on the wire. The response is a
// streaming NDJSON feed of notification events — KindInit with the
// initial kNN view, then one line per view change (or per radius match)
// for as long as the client stays connected. The stream obeys the
// server's drain discipline: Drain ends every open stream before the
// engine closes, and a slow reader loses intermediate events (visible
// via seq gaps and the dropped counter), never stream integrity —
// every kNN line carries the complete current view.
package netserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"pimmine/internal/standing"
)

// SubscribeRequest is the body of POST /v1/subscribe. Exactly one of K
// (a standing kNN query) and Radius (a match watch on future inserts)
// must be set.
type SubscribeRequest struct {
	Tenant string    `json:"tenant,omitempty"`
	Query  []float64 `json:"query"`
	// K registers a standing k-nearest-neighbor query, 1..MaxK.
	K int `json:"k,omitempty"`
	// Radius registers a radius watch: an event per future insert within
	// this Euclidean distance of Query.
	Radius float64 `json:"radius,omitempty"`
	// MaxEvents, when positive, closes the stream after that many
	// delivered events — for bounded consumers and tests; zero streams
	// until disconnect or drain.
	MaxEvents int `json:"max_events,omitempty"`
}

// EventLine is one NDJSON line of the subscription stream. Trigger and
// Dist have no omitempty: id 0 is a valid trigger and 0 a valid
// distance.
type EventLine struct {
	// Seq is the per-subscription sequence number, counting generated
	// events including dropped ones — a gap means the consumer was slow.
	Seq  int    `json:"seq"`
	Kind string `json:"kind"` // "init", "update" or "match"
	// Trigger is the global id that caused the event (-1 for init).
	Trigger int     `json:"trigger"`
	Dist    float64 `json:"dist"`
	// Neighbors is the full current kNN view (absent on radius matches).
	Neighbors []NeighborWire `json:"neighbors,omitempty"`
	// Dropped is the subscription's cumulative dropped-event count at
	// emit time.
	Dropped int64 `json:"dropped,omitempty"`
}

// DecodeSubscribeRequest parses and validates a subscribe body. Pure in
// (data, dims, maxK), like the other wire decoders.
func DecodeSubscribeRequest(data []byte, dims, maxK int) (*SubscribeRequest, error) {
	var req SubscribeRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	switch {
	case req.K > 0 && req.Radius != 0:
		return nil, fmt.Errorf("%w: set exactly one of k and radius", ErrBadRequest)
	case req.K > 0:
		if err := checkK(req.K, maxK); err != nil {
			return nil, err
		}
	case req.Radius > 0:
		// JSON cannot carry NaN/Inf, so a decoded positive radius is
		// finite by construction.
	default:
		return nil, fmt.Errorf("%w: set exactly one of k and radius", ErrBadRequest)
	}
	if req.MaxEvents < 0 {
		return nil, fmt.Errorf("%w: max_events must be >= 0", ErrBadRequest)
	}
	if err := checkQuery(req.Query, dims); err != nil {
		return nil, err
	}
	return &req, nil
}

// eventLine converts a standing event to its wire form.
func eventLine(ev standing.Event, dropped int64) EventLine {
	return EventLine{
		Seq:       ev.Seq,
		Kind:      ev.Kind.String(),
		Trigger:   ev.Trigger,
		Dist:      ev.Dist,
		Neighbors: toWire(ev.Result),
		Dropped:   dropped,
	}
}

// handleSubscribe answers POST /v1/subscribe. The subscription does not
// hold a fair-queue slot — a stream lives indefinitely and must not
// pin query concurrency — but it registers against drain like any
// request, so Drain waits for the stream to notice drainCh and exit
// before the engine closes.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	done, ok := s.begin()
	if !ok {
		s.writeError(w, ErrDraining, 0)
		return
	}
	defer done()
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	req, err := DecodeSubscribeRequest(body, s.sub.Dims(), s.opts.MaxK)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	tenant := tenantOf(r, req.Tenant)
	s.nobs.noteRequest(tenant)
	var sub *standing.Subscription
	if req.K > 0 {
		sub, err = s.sub.SubscribeKNN(req.Query, req.K)
	} else {
		sub, err = s.sub.SubscribeRadius(req.Query, req.Radius)
	}
	if err != nil {
		s.nobs.noteRejected(tenant, VerdictFor(err).Code)
		s.writeError(w, err, 0)
		return
	}
	defer s.unsub(sub.ID())

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // client sees acceptance before the first event
	}
	enc := json.NewEncoder(w)
	start := time.Now()
	sent := 0
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				// Engine/registry closed underneath us.
				s.nobs.noteOK(tenant, time.Since(start).Seconds())
				return
			}
			if err := enc.Encode(eventLine(ev, sub.Dropped())); err != nil {
				return // client went away mid-write
			}
			if flusher != nil {
				flusher.Flush()
			}
			sent++
			if req.MaxEvents > 0 && sent >= req.MaxEvents {
				s.nobs.noteOK(tenant, time.Since(start).Seconds())
				return
			}
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			s.nobs.noteOK(tenant, time.Since(start).Seconds())
			return
		}
	}
}
