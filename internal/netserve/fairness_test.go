package netserve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimmine/internal/netserve"
	"pimmine/internal/serve"
)

// jain computes Jain's fairness index over per-tenant goodput:
// (Σx)² / (n·Σx²). 1.0 is perfect equality; 1/n is total capture.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// TestFairnessJainUnderSkew is the headline property test: one hot
// tenant offers 10x the closed-loop demand of each of ten cold tenants
// against a server provisioned at roughly half the aggregate demand
// (2x offered load). With equal weights, weighted-fair queueing must
// keep per-tenant goodput near-equal — Jain >= 0.9 — where FIFO would
// let the hot tenant capture the slots (Jain ~= 1/n). The engine is
// paced so requests have real service time and a real backlog forms;
// with zero-cost service nothing queues and any discipline looks fair.
func TestFairnessJainUnderSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant load window")
	}
	const (
		coldTenants = 10
		hotClients  = 10 // 10:1 offered-load skew vs each cold tenant
		slots       = 2
		attempts    = 3 // scheduling-noise tolerance; the property must hold in one of three windows
		wantJain    = 0.9
	)
	service := raceScale * 400 * time.Microsecond
	window := raceScale * 250 * time.Millisecond

	eng, ds := buildEngine(t, 100, 1, serve.Options{
		Factory: pacedFactory(service),
		Workers: slots,
	})
	defer eng.Close()
	srv, err := netserve.New(netserve.Options{Engine: eng, Slots: slots, MaxQueue: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, err := json.Marshal(netserve.QueryRequest{Query: ds.Queries(1, 61).Row(0), K: 3})
	if err != nil {
		t.Fatal(err)
	}
	tenants := make([]string, 0, coldTenants+1)
	tenants = append(tenants, "hot")
	for i := 0; i < coldTenants; i++ {
		tenants = append(tenants, fmt.Sprintf("cold%d", i))
	}

	runWindow := func() (float64, []float64) {
		counts := make(map[string]*atomic.Int64, len(tenants))
		for _, name := range tenants {
			counts[name] = &atomic.Int64{}
		}
		var stop atomic.Bool
		var wg sync.WaitGroup
		client := func(tenant string) {
			defer wg.Done()
			for !stop.Load() {
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/search", bytes.NewReader(body))
				if err != nil {
					return
				}
				req.Header.Set("X-Tenant", tenant)
				resp, err := ts.Client().Do(req)
				if err != nil {
					return
				}
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ok {
					counts[tenant].Add(1)
				} else {
					// Queue-full rejection: back off briefly so the tenant
					// keeps offering load without spinning.
					time.Sleep(service)
				}
			}
		}
		for i := 0; i < hotClients; i++ {
			wg.Add(1)
			go client("hot")
		}
		for i := 0; i < coldTenants; i++ {
			wg.Add(1)
			go client(tenants[1+i])
		}
		time.Sleep(window)
		stop.Store(true)
		wg.Wait()
		xs := make([]float64, len(tenants))
		for i, name := range tenants {
			xs[i] = float64(counts[name].Load())
		}
		return jain(xs), xs
	}

	var best float64
	var bestXs []float64
	for a := 0; a < attempts; a++ {
		j, xs := runWindow()
		if j > best {
			best, bestXs = j, xs
		}
		t.Logf("attempt %d: jain=%.3f per-tenant=%v", a, j, xs)
		if best >= wantJain {
			break
		}
	}
	if best < wantJain {
		t.Fatalf("Jain index %.3f < %.2f under 10:1 skew (per-tenant %v) — WFQ not isolating tenants", best, wantJain, bestXs)
	}
	if bestXs[0] == 0 {
		t.Fatal("hot tenant got zero goodput — fairness must not mean starvation")
	}
}
