package netserve_test

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"pimmine/internal/cluster"
	"pimmine/internal/netserve"
	"pimmine/internal/vec"
)

func buildClusterEngine(t *testing.T, n, d int, opts cluster.Options) (*cluster.Engine, *vec.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	data := vec.NewMatrix(n, d)
	for i := range data.Data {
		data.Data[i] = rng.Float64()
	}
	eng, err := cluster.New(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, data
}

// TestClusterWireFailoverInvisible serves a 4-node R=2 cluster over the
// wire and kills a node mid-session: every post-kill response must stay
// byte-identical to the pre-kill baseline, and /v1/info must report the
// shrunken fleet.
func TestClusterWireFailoverInvisible(t *testing.T) {
	t.Parallel()
	eng, data := buildClusterEngine(t, 240, 10, cluster.Options{Nodes: 4, Replicas: 2, Shards: 6, Seed: 5})
	srv, err := netserve.New(netserve.Options{Cluster: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain()

	const k, nq = 5, 8
	wireSearch := func(i int) string {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/search", netserve.QueryRequest{
			Query: data.Row(i * 29 % data.N), K: k,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, body)
		}
		var qr netserve.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		return renderWire(qr.Neighbors)
	}
	baseline := make([]string, nq)
	for i := range baseline {
		baseline[i] = wireSearch(i)
	}

	if err := eng.KillNode(1); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	for i := range baseline {
		if got := wireSearch(i); got != baseline[i] {
			t.Fatalf("query %d differs after node kill\nbefore %s\nafter  %s", i, baseline[i], got)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Mutable bool `json:"mutable"`
		Cluster struct {
			Nodes    int `json:"nodes"`
			Replicas int `json:"replicas"`
			NodesUp  int `json:"nodes_up"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if !info.Mutable {
		t.Fatal("cluster deployment must advertise the subscription surface")
	}
	if info.Cluster.Nodes != 4 || info.Cluster.Replicas != 2 || info.Cluster.NodesUp != 3 {
		t.Fatalf("info cluster block = %+v, want nodes 4 replicas 2 up 3", info.Cluster)
	}
}

// TestClusterWireNoQuorum maps total replica loss to an honest 503:
// code no_quorum with a Retry-After hint (anti-entropy repair can
// restore service, so retrying is truthful advice).
func TestClusterWireNoQuorum(t *testing.T) {
	t.Parallel()
	eng, data := buildClusterEngine(t, 80, 6, cluster.Options{Nodes: 2, Replicas: 1, Shards: 2, Seed: 5})
	srv, err := netserve.New(netserve.Options{Cluster: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Drain()

	for id := 0; id < 2; id++ {
		if err := eng.KillNode(id); err != nil {
			t.Fatalf("KillNode(%d): %v", id, err)
		}
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/search", netserve.QueryRequest{
		Query: data.Row(0), K: 3,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	var er netserve.ErrorBody
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != "no_quorum" {
		t.Fatalf("code %q, want no_quorum", er.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no_quorum response missing Retry-After")
	}
}

// TestClusterOptionExclusive pins the three-way exactly-one rule.
func TestClusterOptionExclusive(t *testing.T) {
	t.Parallel()
	eng, _ := buildClusterEngine(t, 40, 4, cluster.Options{Nodes: 2, Replicas: 1, Shards: 2})
	defer eng.Close()
	if _, err := netserve.New(netserve.Options{}); err == nil {
		t.Fatal("no engine accepted")
	}
	srv, err := netserve.New(netserve.Options{Cluster: eng})
	if err != nil {
		t.Fatalf("cluster-only: %v", err)
	}
	_ = srv
}
