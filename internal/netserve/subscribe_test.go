package netserve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pimmine/internal/dataset"
	"pimmine/internal/netserve"
	"pimmine/internal/serve"
)

// buildMutableServer makes a mutable engine over a Table 6 dataset and
// a server fronting it.
func buildMutableServer(t *testing.T, n, shards int) (*netserve.Server, *serve.MutableEngine, *httptest.Server, *dataset.Dataset) {
	t.Helper()
	prof, err := dataset.ByName("MSD")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Generate(prof, n, 17)
	eng, err := serve.NewMutable(ds.X, serve.MutableOptions{
		Options:        serve.Options{Shards: shards, Workers: 2},
		MaxDelta:       1 << 20,
		StandingBuffer: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netserve.New(netserve.Options{Mutable: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, eng, ts, ds
}

// subscribeStream opens /v1/subscribe and returns the live response and
// a line scanner over the NDJSON stream.
func subscribeStream(t *testing.T, ts *httptest.Server, req netserve.SubscribeRequest) (*http.Response, *bufio.Scanner) {
	t.Helper()
	enc, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/subscribe", "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp, bufio.NewScanner(resp.Body)
}

// TestSubscribeStreamDifferential pins the subscription stream to the
// in-process engine: the init line matches a one-shot search bit for
// bit, and after an insert that enters the view, the update line
// matches the new one-shot answer.
func TestSubscribeStreamDifferential(t *testing.T) {
	t.Parallel()
	_, eng, ts, ds := buildMutableServer(t, 200, 2)
	q := ds.Queries(1, 31).Row(0)
	const k = 5

	resp, sc := subscribeStream(t, ts, netserve.SubscribeRequest{Query: q, K: k, MaxEvents: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !sc.Scan() {
		t.Fatalf("no init line: %v", sc.Err())
	}
	var init netserve.EventLine
	if err := json.Unmarshal(sc.Bytes(), &init); err != nil {
		t.Fatal(err)
	}
	if init.Kind != "init" || init.Seq != 0 || init.Trigger != -1 {
		t.Fatalf("init line = %+v", init)
	}
	oneShot, err := eng.Search(context.Background(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderWire(init.Neighbors), renderDirect(oneShot.Neighbors); got != want {
		t.Fatalf("init view differs from one-shot:\n got %s\nwant %s", got, want)
	}

	// Insert the query vector itself: distance 0 must enter the view and
	// produce an update line carrying the new one-shot answer.
	id, err := eng.Insert(q)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no update line: %v", sc.Err())
	}
	var up netserve.EventLine
	if err := json.Unmarshal(sc.Bytes(), &up); err != nil {
		t.Fatal(err)
	}
	if up.Kind != "update" || up.Trigger != id || up.Seq != 1 {
		t.Fatalf("update line = %+v, want update on %d", up, id)
	}
	oneShot, err = eng.Search(context.Background(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderWire(up.Neighbors), renderDirect(oneShot.Neighbors); got != want {
		t.Fatalf("update view differs from one-shot:\n got %s\nwant %s", got, want)
	}
	// MaxEvents: the stream closed itself after two lines.
	if sc.Scan() {
		t.Fatalf("stream outlived max_events: %s", sc.Text())
	}
}

// TestSubscribeRadiusAndValidation covers the radius watch on the wire
// and the decoder's 400 verdicts.
func TestSubscribeRadiusAndValidation(t *testing.T) {
	t.Parallel()
	_, eng, ts, ds := buildMutableServer(t, 60, 2)
	q := ds.Queries(1, 33).Row(0)

	resp, sc := subscribeStream(t, ts, netserve.SubscribeRequest{Query: q, Radius: 0.05, MaxEvents: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	id, err := eng.Insert(q) // distance 0: inside any radius
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no match line: %v", sc.Err())
	}
	var ev netserve.EventLine
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "match" || ev.Trigger != id || ev.Dist != 0 || len(ev.Neighbors) != 0 {
		t.Fatalf("match line = %+v, want zero-distance match on %d", ev, id)
	}

	bad := []netserve.SubscribeRequest{
		{Query: q},                      // neither k nor radius
		{Query: q, K: 3, Radius: 1},     // both
		{Query: q, K: 100000},           // k over cap
		{Query: q, Radius: -1},          // negative radius
		{Query: q[:3], K: 3},            // wrong dims
		{Query: q, K: 3, MaxEvents: -1}, // negative max_events
		{Query: nil, Radius: 0.5},       // missing query
	}
	for i, req := range bad {
		resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/subscribe", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
}

// TestSubscribeDrainEndsStreams is the drain discipline: an open
// unbounded stream must end promptly when Drain begins, Drain must
// return (closing the engine), and repeated Drain must report the same
// outcome.
func TestSubscribeDrainEndsStreams(t *testing.T) {
	t.Parallel()
	srv, _, ts, ds := buildMutableServer(t, 60, 2)
	q := ds.Queries(1, 35).Row(0)

	resp, sc := subscribeStream(t, ts, netserve.SubscribeRequest{Query: q, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if !sc.Scan() { // init line proves the stream is live
		t.Fatalf("no init line: %v", sc.Err())
	}
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain() }()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not finish while a subscription stream was open")
	}
	for sc.Scan() {
		// Drain may not race ahead of buffered lines; drain them.
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("second Drain = %v (must repeat the first outcome)", err)
	}
	// New subscriptions after drain are refused.
	enc, _ := json.Marshal(netserve.SubscribeRequest{Query: q, K: 3})
	r2, err := ts.Client().Post(ts.URL+"/v1/subscribe", "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("subscribe after drain: status %d", r2.StatusCode)
	}
}

// TestMutableWireSearch proves the search endpoints work unchanged over
// Options.Mutable, including through churn.
func TestMutableWireSearch(t *testing.T) {
	t.Parallel()
	_, eng, ts, ds := buildMutableServer(t, 150, 3)
	if _, err := netserve.New(netserve.Options{}); err == nil {
		t.Fatal("New with no engine accepted")
	}
	q := ds.Queries(1, 37).Row(0)
	const k = 6
	check := func(phase string) {
		t.Helper()
		direct, err := eng.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		resp, data := postJSON(t, ts.Client(), ts.URL+"/v1/search", netserve.QueryRequest{Query: q, K: k})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", phase, resp.StatusCode, data)
		}
		var qr netserve.QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatal(err)
		}
		if got, want := renderWire(qr.Neighbors), renderDirect(direct.Neighbors); got != want {
			t.Fatalf("%s: wire differs from direct:\n got %s\nwant %s", phase, got, want)
		}
	}
	check("initial")
	for i := 0; i < 10; i++ {
		if _, err := eng.Insert(ds.Queries(1, int64(40+i)).Row(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Delete(3); err != nil {
		t.Fatal(err)
	}
	check("after churn")
}
