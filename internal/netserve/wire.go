// Wire format: the JSON request/response types of the network serving
// front-end, and the strict decoders that gate what reaches the engine.
// Decoding is deliberately a pure function of the request bytes plus the
// engine's static shape (dims, caps) so it can be fuzzed in isolation
// (FuzzDecodeQueryRequest) and so a malformed request is rejected with a
// typed error before it costs any admission or crossbar budget.
package netserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"pimmine/internal/quant"
	"pimmine/internal/route"
	"pimmine/internal/serve"
	"pimmine/internal/vec"
)

// ErrBadRequest marks a request rejected at the wire boundary —
// malformed JSON, missing or mis-shaped fields, out-of-cap k or batch
// size, or query values the quantization contract refuses
// (quant.ErrNotFinite / quant.ErrOutOfRange wrap it alongside). It maps
// to HTTP 400.
var ErrBadRequest = errors.New("netserve: bad request")

// QueryRequest is the body of POST /v1/search.
type QueryRequest struct {
	// Tenant identifies the caller for quota and fairness accounting;
	// empty falls back to the X-Tenant header, then to "default".
	Tenant string `json:"tenant,omitempty"`
	// Query is the kNN query vector, normalized into [0,1] like every
	// dataset this engine serves (the §V-B quantization contract).
	Query []float64 `json:"query"`
	// K is the neighbor count, 1..MaxK.
	K int `json:"k"`
	// Mode selects the shard-routing mode: "exact", "approx", or empty
	// for the engine's default. Anything else is a 400; an explicit mode
	// against an engine without a router is a 400 too.
	Mode string `json:"mode,omitempty"`
}

// BatchRequest is the body of POST /v1/search/batch.
type BatchRequest struct {
	Tenant  string      `json:"tenant,omitempty"`
	Queries [][]float64 `json:"queries"`
	K       int         `json:"k"`
	Mode    string      `json:"mode,omitempty"`
}

// NeighborWire is one kNN result on the wire. Dist round-trips through
// JSON bit-exactly: encoding/json renders float64 in shortest form,
// which strconv parses back to the identical bits — the property the
// differential suite pins.
type NeighborWire struct {
	Index int     `json:"index"`
	Dist  float64 `json:"dist"`
}

// QueryResponse is one query's answer on the wire.
type QueryResponse struct {
	Neighbors []NeighborWire `json:"neighbors"`
	// Degraded and BreakerOpen surface the engine's exactness-preserving
	// fallbacks (results are still exact; only throughput modeling
	// degrades).
	Degraded    []int `json:"degraded,omitempty"`
	BreakerOpen []int `json:"breaker_open,omitempty"`
	// Routed surfaces the routing tier's annotation on routed engines
	// (absent when the engine has no router).
	Routed *RoutedWire `json:"routed,omitempty"`
}

// RoutedWire is serve.RouteInfo on the wire.
type RoutedWire struct {
	Mode          string  `json:"mode"`
	Visited       int     `json:"visited"`
	Skipped       int     `json:"skipped"`
	SkippedShards []int   `json:"skipped_shards,omitempty"`
	EstRecall     float64 `json:"est_recall"`
	// Audited/MeasuredRecall report the periodic recall audit of
	// approximate queries (Config.AuditEvery).
	Audited        bool    `json:"audited,omitempty"`
	MeasuredRecall float64 `json:"measured_recall,omitempty"`
}

// routedWire converts the engine annotation to the wire form.
func routedWire(ri *serve.RouteInfo) *RoutedWire {
	if ri == nil {
		return nil
	}
	return &RoutedWire{
		Mode: string(ri.Mode), Visited: ri.Visited, Skipped: ri.Skipped,
		SkippedShards: ri.SkippedShards, EstRecall: ri.EstRecall,
		Audited: ri.Audited, MeasuredRecall: ri.MeasuredRecall,
	}
}

// BatchLine is one NDJSON line of the streaming batch response: either
// a result or a per-query error, tagged with the query's index so the
// stream stays self-describing even though lines are written in order.
type BatchLine struct {
	Index  int            `json:"index"`
	Result *QueryResponse `json:"result,omitempty"`
	Error  *ErrorBody     `json:"error,omitempty"`
}

// ErrorBody is the JSON error envelope (also the non-200 response
// body). Code is the machine-readable name from the sentinel mapping in
// status.go.
type ErrorBody struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// decodeStrict unmarshals one JSON value with unknown fields rejected
// and trailing garbage refused.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON body", ErrBadRequest)
	}
	return nil
}

// checkQuery validates one query vector against the engine shape: the
// dimensionality must match and every value must satisfy the
// quantization contract (finite, in [0,1]) — quant.Check's typed errors
// ride along so callers can distinguish NaN/Inf from out-of-range.
func checkQuery(q []float64, dims int) error {
	if len(q) != dims {
		return fmt.Errorf("%w: query has %d dims, dataset has %d", ErrBadRequest, len(q), dims)
	}
	if err := quant.CheckVec(q); err != nil {
		return fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	return nil
}

func checkK(k, maxK int) error {
	if k < 1 || k > maxK {
		return fmt.Errorf("%w: k %d outside 1..%d", ErrBadRequest, k, maxK)
	}
	return nil
}

// checkMode validates a wire routing-mode string strictly: only "",
// "exact" and "approx" pass (route.ParseMode owns the vocabulary).
func checkMode(mode string) (route.Mode, error) {
	m, err := route.ParseMode(mode)
	if err != nil {
		return route.ModeAuto, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return m, nil
}

// DecodeQueryRequest parses and validates a single-query body. It is a
// pure function of (data, dims, maxK) — the fuzz target.
func DecodeQueryRequest(data []byte, dims, maxK int) (*QueryRequest, error) {
	var req QueryRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := checkK(req.K, maxK); err != nil {
		return nil, err
	}
	if _, err := checkMode(req.Mode); err != nil {
		return nil, err
	}
	if err := checkQuery(req.Query, dims); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeBatchRequest parses and validates a batch body.
func DecodeBatchRequest(data []byte, dims, maxK, maxBatch int) (*BatchRequest, error) {
	var req BatchRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := checkK(req.K, maxK); err != nil {
		return nil, err
	}
	if _, err := checkMode(req.Mode); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 || len(req.Queries) > maxBatch {
		return nil, fmt.Errorf("%w: batch of %d queries outside 1..%d", ErrBadRequest, len(req.Queries), maxBatch)
	}
	for i, q := range req.Queries {
		if err := checkQuery(q, dims); err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
	}
	return &req, nil
}

// queriesMatrix packs validated batch queries into the engine's dense
// row-major form.
func queriesMatrix(qs [][]float64, dims int) *vec.Matrix {
	m := vec.NewMatrix(len(qs), dims)
	for i, q := range qs {
		copy(m.Row(i), q)
	}
	return m
}

// toWire converts engine neighbors to the wire form.
func toWire(nn []vec.Neighbor) []NeighborWire {
	out := make([]NeighborWire, len(nn))
	for i, n := range nn {
		out[i] = NeighborWire{Index: n.Index, Dist: n.Dist}
	}
	return out
}
