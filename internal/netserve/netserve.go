// Package netserve is the network serving front-end: an HTTP/1.1 +
// cleartext-HTTP/2 (h2c) JSON server over the sharded query engine of
// internal/serve, adding the things a wire boundary owes its callers —
// per-tenant token-bucket quotas and weighted-fair queueing (one hot
// tenant cannot starve the host↔PIM transfer budget), a typed-sentinel
// → status-code contract with honest Retry-After hints, streaming NDJSON
// batch responses, per-tenant metrics, and graceful drain (in-flight
// requests complete; new arrivals get an immediate 503).
//
// The wire adds no approximation: a served result is byte-identical to
// the same call against the in-process facade (pinned by the
// differential suite in netserve_test.go — JSON float64 round-trips are
// bit-exact).
package netserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"pimmine/internal/cluster"
	"pimmine/internal/obs"
	"pimmine/internal/resilience"
	"pimmine/internal/route"
	"pimmine/internal/serve"
	"pimmine/internal/standing"
)

// queryEngine is the engine surface the wire layer consumes — satisfied
// by *serve.Engine, *serve.MutableEngine and *cluster.Engine, so one
// server fronts the immutable, durable-mutable, or multi-node
// deployment shape.
type queryEngine interface {
	SearchMode(ctx context.Context, q []float64, k int, mode route.Mode) (*serve.Result, error)
	Dims() int
	Rows() int
	NumShards() int
	Router() *route.Router
	Workers() int
	Close() error
}

// subscribeEngine is the standing-query surface, satisfied by the
// mutable and cluster engines (Unsubscribe differs in signature between
// the two, so the server keeps it as a closure instead).
type subscribeEngine interface {
	Dims() int
	SubscribeKNN(q []float64, k int) (*standing.Subscription, error)
	SubscribeRadius(q []float64, radius float64) (*standing.Subscription, error)
}

// DefaultTenant is the accounting identity of requests that carry no
// tenant (wire field or X-Tenant header).
const DefaultTenant = "default"

// Defaults for the knobs Options leaves zero.
const (
	DefaultMaxK         = 128
	DefaultMaxBatch     = 1024
	DefaultMaxQueue     = 16
	DefaultMaxBodyBytes = 8 << 20
)

// Options configures New.
type Options struct {
	// Engine is the sharded query engine to serve. The server takes
	// ownership of its shutdown: Drain closes it. Exactly one of
	// Engine, Mutable and Cluster must be set.
	Engine *serve.Engine
	// Mutable serves a mutable engine instead: the same query surface
	// plus POST /v1/subscribe standing-query event streams (and, when
	// the engine was built with Durability, its WAL semantics — Drain's
	// close flushes the log).
	Mutable *serve.MutableEngine
	// Cluster serves a multi-node placement engine: the same query and
	// subscription surface, with R-way replicated shards failing over
	// behind the wire. Its typed degradation sentinels (no quorum,
	// rebalancing, node down) map to honest 503 verdicts.
	Cluster *cluster.Engine
	// Tenants provisions quotas and fair-queue weights; tenants not
	// listed are admitted with defaults (weight 1, no quota).
	Tenants []TenantConfig
	// Slots is the fair-queue concurrency — how many wire queries may be
	// in the engine at once; defaults to the engine's worker width.
	Slots int
	// MaxQueue bounds each tenant's fair-queue backlog (default 16);
	// beyond it requests are rejected with 429 instead of queueing.
	MaxQueue int
	// MaxK and MaxBatch cap the per-request k and batch size (defaults
	// 128 and 1024); larger requests are 400s.
	MaxK     int
	MaxBatch int
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Obs, when non-nil, registers per-tenant wire metrics with its
	// registry (pim_net_*).
	Obs *obs.Observer
	// Retry shapes the jittered backoff behind Retry-After on 429/503
	// responses; zero values take the resilience defaults.
	Retry resilience.RetryConfig
	// Now is the quota clock (injectable for tests); nil uses time.Now.
	Now func() time.Time
}

// Server serves the engine over HTTP. It implements http.Handler;
// NewHTTPServer wraps it for h2c. Safe for concurrent use.
type Server struct {
	eng   queryEngine
	sub   subscribeEngine // non-nil when the engine supports subscriptions
	unsub func(id int)    // tears down one subscription on stream end
	clu   *cluster.Engine // non-nil when serving Options.Cluster
	opts  Options
	ten   *tenants
	nobs  *netObs
	retry *resilience.RetryBudget // Retry-After backoff source
	mux   *http.ServeMux

	// drainMu gates request starts against Drain: requests hold the read
	// side while registering in wg, so Drain observes every in-flight
	// request and no request starts after the flag flips. drainCh is the
	// broadcast that ends open subscription streams — unlike a search, a
	// stream never finishes on its own, so drain must cancel it.
	drainMu  sync.RWMutex
	draining bool
	drainCh  chan struct{}
	wg       sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// New builds a server over the configured engine.
func New(opts Options) (*Server, error) {
	var eng queryEngine
	var sub subscribeEngine
	var unsub func(id int)
	set := 0
	for _, on := range []bool{opts.Engine != nil, opts.Mutable != nil, opts.Cluster != nil} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("netserve: set exactly one of Options.Engine, Options.Mutable and Options.Cluster (%d set)", set)
	}
	switch {
	case opts.Engine != nil:
		eng = opts.Engine
	case opts.Mutable != nil:
		eng = opts.Mutable
		sub = opts.Mutable
		unsub = func(id int) { opts.Mutable.Unsubscribe(id) }
	case opts.Cluster != nil:
		eng = opts.Cluster
		sub = opts.Cluster
		unsub = func(id int) { opts.Cluster.Unsubscribe(id) }
	}
	if opts.Slots <= 0 {
		opts.Slots = eng.Workers()
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = DefaultMaxQueue
	}
	if opts.MaxK <= 0 {
		opts.MaxK = DefaultMaxK
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	retryCfg := opts.Retry
	if retryCfg.Ratio <= 0 {
		retryCfg.Ratio = 1 // the budget only shapes backoff here, never gates
	}
	ten, err := newTenants(opts.Slots, opts.MaxQueue, opts.Tenants, opts.Now)
	if err != nil {
		return nil, err
	}
	s := &Server{
		eng:     eng,
		sub:     sub,
		unsub:   unsub,
		clu:     opts.Cluster,
		opts:    opts,
		ten:     ten,
		retry:   resilience.NewRetryBudget(retryCfg),
		drainCh: make(chan struct{}),
	}
	if opts.Obs != nil {
		s.nobs = newNetObs(s, opts.Obs)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/search/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.sub != nil {
		mux.HandleFunc("POST /v1/subscribe", s.handleSubscribe)
	}
	s.mux = mux
	return s, nil
}

// ServeHTTP dispatches to the server's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// NewHTTPServer wraps the server for a listener speaking both HTTP/1.1
// and cleartext HTTP/2 (h2c) — HTTP/2 multiplexes many tenants' streams
// over one connection, which is the shape a fronting proxy speaks.
func (s *Server) NewHTTPServer(addr string) *http.Server {
	p := new(http.Protocols)
	p.SetHTTP1(true)
	p.SetUnencryptedHTTP2(true)
	return &http.Server{Addr: addr, Handler: s, Protocols: p}
}

// Drain begins graceful shutdown: new requests are refused with 503
// immediately, in-flight requests (including open batch streams) run to
// completion, and the engine is closed once the last one finishes.
// Idempotent and safe to call concurrently — every caller returns after
// the same drain completes.
func (s *Server) Drain() error {
	s.drainMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh) // ends open subscription streams
	}
	s.drainMu.Unlock()
	s.wg.Wait()
	// Close exactly once: a durable mutable engine's Close is where the
	// WAL flush happens, and its second call reports ErrClosed by
	// design — every Drain caller should see the first (real) outcome.
	s.closeOnce.Do(func() { s.closeErr = s.eng.Close() })
	return s.closeErr
}

// isDraining reports whether Drain has begun.
func (s *Server) isDraining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// begin registers one in-flight request against drain. ok is false —
// and the request must be refused — once drain has begun.
func (s *Server) begin() (done func(), ok bool) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return nil, false
	}
	s.wg.Add(1)
	return s.wg.Done, true
}

// tenantOf resolves the request's accounting identity.
func tenantOf(r *http.Request, field string) string {
	if field != "" {
		return field
	}
	if h := r.Header.Get("X-Tenant"); h != "" {
		return h
	}
	return DefaultTenant
}

// retryAfter computes the client's backoff hint: the quota bucket's
// time-to-next-token when that is the binding constraint, otherwise the
// retry budget's jittered backoff (jitter de-synchronizes a thundering
// herd of 429'd clients).
func (s *Server) retryAfter(wait time.Duration) time.Duration {
	if b := s.retry.Backoff(0); b > wait {
		return b
	}
	return wait
}

// writeError renders err's wire verdict.
func (s *Server) writeError(w http.ResponseWriter, err error, wait time.Duration) {
	v := VerdictFor(err)
	body := ErrorBody{Error: err.Error(), Code: v.Code}
	if v.RetryAfter {
		ra := s.retryAfter(wait)
		body.RetryAfterMs = ra.Milliseconds()
		// Retry-After is whole seconds; round up so the hint never
		// undershoots the bucket refill.
		secs := int64((ra + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, v.Status, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// readBody slurps the size-capped request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return body, nil
}

// searchOne is the admission-to-answer path shared by the single and
// batch endpoints: quota → weighted-fair queue → engine. wait is the
// quota's Retry-After hint when err is a quota rejection. mode is the
// already-validated wire routing mode (empty = engine default).
func (s *Server) searchOne(r *http.Request, tenant string, q []float64, k int, mode route.Mode) (resp *QueryResponse, wait time.Duration, err error) {
	s.nobs.noteRequest(tenant)
	start := time.Now()
	release, wait, err := s.ten.admit(r.Context(), tenant)
	if err != nil {
		return nil, wait, err
	}
	res, err := s.eng.SearchMode(r.Context(), q, k, mode)
	release()
	if err != nil {
		return nil, 0, err
	}
	s.nobs.noteOK(tenant, time.Since(start).Seconds())
	return &QueryResponse{
		Neighbors:   toWire(res.Neighbors),
		Degraded:    res.Degraded,
		BreakerOpen: res.BreakerOpen,
		Routed:      routedWire(res.Routed),
	}, 0, nil
}

// handleSearch answers POST /v1/search.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	done, ok := s.begin()
	if !ok {
		s.writeError(w, ErrDraining, 0)
		return
	}
	defer done()
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	req, err := DecodeQueryRequest(body, s.eng.Dims(), s.opts.MaxK)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	tenant := tenantOf(r, req.Tenant)
	resp, wait, err := s.searchOne(r, tenant, req.Query, req.K, route.Mode(req.Mode))
	if err != nil {
		s.nobs.noteRejected(tenant, VerdictFor(err).Code)
		s.writeError(w, err, wait)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch answers POST /v1/search/batch with a streaming NDJSON
// response: one BatchLine per query, written strictly in query order
// and flushed as computed, so a client reads early results while late
// ones are still in the engine. Queries run concurrently up to the
// fair-queue window; admission is per query, so one line can be a typed
// 429 verdict while its neighbors succeed.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	done, ok := s.begin()
	if !ok {
		s.writeError(w, ErrDraining, 0)
		return
	}
	defer done()
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	req, err := DecodeBatchRequest(body, s.eng.Dims(), s.opts.MaxK, s.opts.MaxBatch)
	if err != nil {
		s.writeError(w, err, 0)
		return
	}
	tenant := tenantOf(r, req.Tenant)

	// The in-batch window: enough concurrency to keep the engine busy,
	// never more than the tenant's own backlog bound (a batch must not
	// 429 itself).
	window := s.opts.Slots
	if window > s.opts.MaxQueue {
		window = s.opts.MaxQueue
	}
	if window < 1 {
		window = 1
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	n := len(req.Queries)
	lines := make([]chan BatchLine, n)
	for i := range lines {
		lines[i] = make(chan BatchLine, 1)
	}
	sem := make(chan struct{}, window)
	go func() {
		for i := 0; i < n; i++ {
			sem <- struct{}{}
			go func(i int) {
				defer func() { <-sem }()
				resp, wait, err := s.searchOne(r, tenant, req.Queries[i], req.K, route.Mode(req.Mode))
				if err != nil {
					v := VerdictFor(err)
					s.nobs.noteRejected(tenant, v.Code)
					eb := &ErrorBody{Error: err.Error(), Code: v.Code}
					if v.RetryAfter {
						eb.RetryAfterMs = s.retryAfter(wait).Milliseconds()
					}
					lines[i] <- BatchLine{Index: i, Error: eb}
					return
				}
				lines[i] <- BatchLine{Index: i, Result: resp}
			}(i)
		}
	}()
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		if err := enc.Encode(<-lines[i]); err != nil {
			return // client went away; workers drain into buffered channels
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleInfo answers GET /v1/info with the engine's static shape — what
// a client needs to build valid requests.
func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	info := map[string]any{
		"dims":      s.eng.Dims(),
		"rows":      s.eng.Rows(),
		"shards":    s.eng.NumShards(),
		"max_k":     s.opts.MaxK,
		"max_batch": s.opts.MaxBatch,
		"proto":     r.Proto,
		"mutable":   s.sub != nil,
	}
	if s.clu != nil {
		info["cluster"] = map[string]any{
			"nodes":    s.clu.NumNodes(),
			"replicas": s.clu.Replicas(),
			"nodes_up": s.clu.NodesUp(),
		}
	}
	if rt := s.eng.Router(); rt != nil {
		info["routing"] = map[string]any{
			"default_mode":  string(rt.DefaultMode()),
			"modes":         []string{string(route.ModeExact), string(route.ModeApprox)},
			"recall_target": rt.RecallTarget(),
		}
	}
	writeJSON(w, http.StatusOK, info)
}

// handleHealth answers GET /healthz: 200 while serving, the draining
// verdict (503) once Drain has begun.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.writeError(w, ErrDraining, 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "proto": r.Proto})
}
