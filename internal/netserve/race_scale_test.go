//go:build !race

package netserve_test

import "time"

// raceScale stretches paced service times and measurement windows when
// the race detector multiplies scheduling cost; 1 in normal builds.
const raceScale time.Duration = 1
