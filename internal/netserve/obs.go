// Per-tenant observability: tenant-labeled counters, latency
// histograms and scrape-time queue-depth gauges, following the
// engine-side pim_serve_* conventions under a pim_net_* namespace.
package netserve

import (
	"sync"

	"pimmine/internal/obs"
)

// netObs holds the server's registered metric handles. A nil *netObs
// (observability off) keeps the request path at one pointer check; the
// per-tenant handles are registered lazily on each tenant's first
// request.
type netObs struct {
	o       *obs.Observer
	buckets []float64

	mu        sync.Mutex
	perTenant map[string]*tenantMetrics
}

// tenantMetrics is one tenant's handle set.
type tenantMetrics struct {
	requests *obs.Counter
	ok       *obs.Counter
	latency  *obs.Histogram
}

func newNetObs(s *Server, o *obs.Observer) *netObs {
	no := &netObs{
		o:         o,
		buckets:   o.LatencyBuckets(),
		perTenant: make(map[string]*tenantMetrics),
	}
	o.Registry().RegisterCollector(s.collectMetrics)
	return no
}

// tenant fetches or registers one tenant's handles.
func (no *netObs) tenant(name string) *tenantMetrics {
	if no == nil {
		return nil
	}
	no.mu.Lock()
	defer no.mu.Unlock()
	tm := no.perTenant[name]
	if tm == nil {
		reg := no.o.Registry()
		lbl := obs.Label{Key: "tenant", Value: name}
		tm = &tenantMetrics{
			requests: reg.Counter("pim_net_requests_total",
				"Wire queries received, per tenant (batch queries count individually).", lbl),
			ok: reg.Counter("pim_net_ok_total",
				"Wire queries answered successfully, per tenant.", lbl),
			latency: reg.Histogram("pim_net_latency_seconds",
				"Wall-clock admission-to-answer latency per wire query.", no.buckets, lbl),
		}
		no.perTenant[name] = tm
	}
	return tm
}

// The note* helpers are nil-safe so the request path never cares
// whether observability is wired in.

func (no *netObs) noteRequest(tenant string) {
	if no == nil {
		return
	}
	no.tenant(tenant).requests.Inc()
}

func (no *netObs) noteOK(tenant string, seconds float64) {
	if no == nil {
		return
	}
	tm := no.tenant(tenant)
	tm.ok.Inc()
	tm.latency.Observe(seconds)
}

// noteRejected counts one refused wire query under its verdict code
// (per-tenant, per-code series registered on first use).
func (no *netObs) noteRejected(tenant, code string) {
	if no == nil {
		return
	}
	no.o.Registry().Counter("pim_net_rejected_total",
		"Wire queries refused, per tenant and verdict code.",
		obs.Label{Key: "tenant", Value: name(tenant)}, obs.Label{Key: "code", Value: code}).Inc()
}

// name guards the label value (empty tenant renders as "default" —
// the same fallback the request path applies).
func name(tenant string) string {
	if tenant == "" {
		return DefaultTenant
	}
	return tenant
}

// collectMetrics emits scrape-time gauges: per-tenant fair-queue depth,
// total in-flight and queued, and the drain flag.
func (s *Server) collectMetrics(emit func(obs.Sample)) {
	for _, n := range s.ten.names() {
		emit(obs.Sample{Name: "pim_net_queued",
			Help: "Requests waiting in the tenant's fair-queue backlog.",
			Type: obs.TypeGauge, Labels: []obs.Label{{Key: "tenant", Value: n}},
			Value: float64(s.ten.fq.Queued(n))})
	}
	emit(obs.Sample{Name: "pim_net_inflight",
		Help: "Wire queries holding a fair-queue slot.",
		Type: obs.TypeGauge, Value: float64(s.ten.fq.InFlight())})
	emit(obs.Sample{Name: "pim_net_queued_total",
		Help: "Requests waiting across all tenant backlogs.",
		Type: obs.TypeGauge, Value: float64(s.ten.fq.QueuedTotal())})
	var draining float64
	if s.isDraining() {
		draining = 1
	}
	emit(obs.Sample{Name: "pim_net_draining",
		Help: "1 while graceful drain is in progress or complete.",
		Type: obs.TypeGauge, Value: draining})
}
