// Per-tenant isolation: the token-bucket quota (what a tenant may
// offer) and weighted-fair queue (how contended capacity is divided)
// in front of every query. Ghose et al. (arXiv:1907.12947) put the PIM
// scaling wall at host↔crossbar queue saturation — this file is where
// one hot tenant is stopped from spending everyone's transfer budget.
package netserve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pimmine/internal/resilience"
)

// TenantConfig provisions one tenant.
type TenantConfig struct {
	// Name identifies the tenant (the wire "tenant" field / X-Tenant
	// header).
	Name string
	// Weight is the tenant's fair-queue share (default 1). A weight-3
	// tenant receives 3× a weight-1 tenant's grants while both are
	// backlogged.
	Weight float64
	// Rate is the quota in queries/second; 0 means unlimited.
	Rate float64
	// Burst is the quota burst; defaults to max(1, Rate).
	Burst float64
}

// tenantState is one tenant's runtime admission state.
type tenantState struct {
	name   string
	bucket *resilience.TokenBucket // nil = unlimited
}

// tenants is the tenant registry: provisioned tenants keep their
// configured quota and weight; unknown tenants are admitted lazily with
// defaults (weight 1, unlimited) so the server never 403s on identity,
// only on behavior.
type tenants struct {
	fq  *resilience.FairQueue
	now func() time.Time

	mu sync.RWMutex
	m  map[string]*tenantState
}

func newTenants(slots, maxQueue int, cfgs []TenantConfig, now func() time.Time) (*tenants, error) {
	t := &tenants{
		fq:  resilience.NewFairQueue(slots, maxQueue),
		now: now,
		m:   make(map[string]*tenantState, len(cfgs)),
	}
	for _, c := range cfgs {
		if c.Name == "" {
			return nil, fmt.Errorf("netserve: tenant with empty name")
		}
		if _, dup := t.m[c.Name]; dup {
			return nil, fmt.Errorf("netserve: duplicate tenant %q", c.Name)
		}
		if c.Weight != 0 {
			if err := t.fq.SetWeight(c.Name, c.Weight); err != nil {
				return nil, err
			}
		}
		if c.Rate < 0 {
			return nil, fmt.Errorf("netserve: tenant %q negative rate %v", c.Name, c.Rate)
		}
		burst := c.Burst
		if burst <= 0 {
			burst = c.Rate
		}
		t.m[c.Name] = &tenantState{
			name:   c.Name,
			bucket: resilience.NewTokenBucket(c.Rate, burst, now),
		}
	}
	return t, nil
}

// state fetches or lazily creates a tenant (defaults: weight 1 in the
// fair queue, no quota).
func (t *tenants) state(name string) *tenantState {
	t.mu.RLock()
	st := t.m[name]
	t.mu.RUnlock()
	if st != nil {
		return st
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st = t.m[name]; st == nil {
		st = &tenantState{name: name}
		t.m[name] = st
	}
	return st
}

// names snapshots the known tenant names (for scrape-time gauges).
func (t *tenants) names() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.m))
	for n := range t.m {
		out = append(out, n)
	}
	return out
}

// admit runs one request through quota then fair queueing. On success
// the returned release must be called when the query finishes. On a
// quota rejection, wait is the bucket's time-to-next-token so the
// server can answer with an honest Retry-After.
func (t *tenants) admit(ctx context.Context, tenant string) (release func(), wait time.Duration, err error) {
	st := t.state(tenant)
	if w, qerr := st.bucket.Take(); qerr != nil {
		return nil, w, fmt.Errorf("tenant %q: %w", tenant, qerr)
	}
	release, err = t.fq.Acquire(ctx, tenant)
	return release, 0, err
}
