package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// Replay streams every record in dir with LSN > afterLSN to fn in LSN
// order. It tolerates exactly one irregularity — a truncated final
// frame in the newest segment, a crash's torn tail — which it discards;
// any other decode failure, or a gap in the LSN sequence across
// segment boundaries, aborts with the typed error. fn returning an
// error aborts the replay with that error.
//
// Replay reads the directory as-is and does not repair it; Open is the
// call that truncates the torn tail before new appends.
func Replay(dir string, afterLSN int64, fn func(lsn int64, rec Record) error) error {
	firsts, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	lsn := int64(1)
	if len(firsts) > 0 {
		// Snapshot-truncated logs begin past LSN 1; the first
		// surviving segment must cover afterLSN+1 or earlier, or
		// records are missing.
		lsn = firsts[0]
		if lsn > afterLSN+1 {
			return fmt.Errorf("%w: log starts at LSN %d, need replay from %d", ErrTruncated, lsn, afterLSN+1)
		}
	}
	for i, first := range firsts {
		if first != lsn && i > 0 {
			return fmt.Errorf("%w: segment %s starts at LSN %d, want %d", ErrCorrupt, segName(first), first, lsn)
		}
		b, err := os.ReadFile(filepath.Join(dir, segName(first)))
		if err != nil {
			return err
		}
		off := 0
		last := i == len(firsts)-1
		for off < len(b) {
			rec, n, err := DecodeRecord(b[off:])
			if err != nil {
				if last && isTruncated(err) {
					return nil // torn tail: everything durable has been replayed
				}
				return fmt.Errorf("segment %s, LSN %d: %w", segName(first), lsn, err)
			}
			off += n
			if lsn > afterLSN {
				if err := fn(lsn, rec); err != nil {
					return err
				}
			}
			lsn++
		}
	}
	return nil
}
