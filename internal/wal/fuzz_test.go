package wal

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// FuzzWALDecode is the log-format robustness contract: for arbitrary
// bytes, DecodeRecord must never panic and must classify every failure
// as exactly one of the typed sentinels — ErrTruncated when the stream
// ends mid-frame, ErrCorrupt when the bytes are inconsistent. A frame
// it accepts must be internally consistent and re-encode bit-exactly,
// so replay can never materialize a record the appender did not write.
func FuzzWALDecode(f *testing.F) {
	// Committed seeds: valid frames of each op, a torn tail, a CRC
	// flip, a hostile length prefix, and raw junk.
	f.Add(AppendRecord(nil, Record{Op: OpInsert, Shard: 0, ID: 0, Vec: []float64{1.5, -2.25}}))
	f.Add(AppendRecord(nil, Record{Op: OpUpdate, Shard: 3, ID: 41, Vec: []float64{math.Pi}}))
	f.Add(AppendRecord(nil, Record{Op: OpDelete, Shard: 1, ID: 7}))
	f.Add(AppendRecord(AppendRecord(nil, Record{Op: OpInsert, ID: 1, Vec: []float64{0}}),
		Record{Op: OpDelete, ID: 1})) // two back-to-back frames
	full := AppendRecord(nil, Record{Op: OpInsert, ID: 9, Vec: []float64{1, 2, 3}})
	f.Add(full[:len(full)-5]) // torn tail
	crcFlip := append([]byte(nil), full...)
	crcFlip[5] ^= 0x10
	f.Add(crcFlip)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 1}) // absurd length prefix
	f.Add([]byte("not a wal frame at all, just text"))

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeRecord(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("untyped decode error: %v", err)
			}
			if errors.Is(err, ErrCorrupt) && errors.Is(err, ErrTruncated) {
				t.Fatalf("ambiguously typed decode error: %v", err)
			}
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
			return
		}
		if n < frameHeader+payloadHeader || n > len(b) {
			t.Fatalf("accepted frame consumed %d of %d bytes", n, len(b))
		}
		// Accepted records are internally consistent...
		switch rec.Op {
		case OpInsert, OpUpdate:
			if len(rec.Vec) == 0 {
				t.Fatalf("accepted %v without a vector", rec.Op)
			}
		case OpDelete:
			if rec.Vec != nil {
				t.Fatalf("accepted delete with a vector")
			}
		default:
			t.Fatalf("accepted unknown op %d", rec.Op)
		}
		if rec.ID < 0 || rec.Shard < 0 || len(rec.Vec) > MaxDim {
			t.Fatalf("accepted out-of-range record %+v", rec)
		}
		// ...and round-trip bit-exactly to the consumed frame bytes.
		if re := AppendRecord(nil, rec); !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode differs from accepted frame")
		}
	})
}

// FuzzSnapshotDecode extends the same contract to snapshot files: no
// panic, typed errors only, and accepted snapshots re-encode to the
// exact input bytes (the format has no redundancy to normalize away).
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(EncodeSnapshot(&Snapshot{LSN: 3, Dims: 2, NextID: 4, RR: 1, Shards: []ShardState{
		{IDs: []int{0, 2}, Data: []float64{1, 2, 3, 4}},
		{IDs: []int{1}, Data: []float64{5, 6}},
	}}))
	f.Add(EncodeSnapshot(&Snapshot{LSN: 0, Dims: 1, NextID: 0, Shards: []ShardState{{}}}))
	f.Add([]byte(snapMagic))
	f.Add([]byte("PIMSNAP2 wrong magic entirely............."))

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSnapshot(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("untyped snapshot decode error: %v", err)
			}
			return
		}
		if s.Dims <= 0 || s.NextID < 0 || s.LSN < 0 || len(s.Shards) == 0 {
			t.Fatalf("accepted inconsistent snapshot header %+v", s)
		}
		for i, sh := range s.Shards {
			if len(sh.Data) != len(sh.IDs)*s.Dims {
				t.Fatalf("shard %d: %d data for %d ids at %d dims", i, len(sh.Data), len(sh.IDs), s.Dims)
			}
		}
		if re := EncodeSnapshot(s); !bytes.Equal(re, b) {
			t.Fatalf("snapshot re-encode differs from accepted bytes")
		}
	})
}
