package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy chooses when Append calls fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: a record is
	// durable before Append returns. The default, and what the
	// crash/recover goldens assume.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when Options.SyncEvery has elapsed since the
	// last sync; a crash can lose the records since then, but every
	// surviving prefix still replays exactly.
	SyncInterval
	// SyncNever leaves syncing to Sync/Close callers (and the OS).
	SyncNever
)

// Options configures a Log.
type Options struct {
	// Policy is the fsync cadence. Zero value is SyncAlways.
	Policy SyncPolicy
	// SyncEvery is the SyncInterval period. Zero means 100ms.
	SyncEvery time.Duration
	// SegmentBytes rotates to a new segment file once the active one
	// reaches this size. Zero means 4 MiB.
	SegmentBytes int64
	// Fsync replaces the file-sync call, letting tests inject sync
	// failures. Nil means (*os.File).Sync.
	Fsync func(*os.File) error
	// Now replaces the clock for SyncInterval. Nil means time.Now.
	Now func() time.Time
	// Metrics receives append/fsync/rotation counts. Nil disables.
	Metrics *Metrics
}

const (
	segPrefix     = "wal-"
	segSuffix     = ".seg"
	defaultSegLen = 4 << 20
)

// Log is an append-only record log over a directory of segment files.
// Safe for one appender at a time; methods are serialized internally so
// Sync/Close may race with Append.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment
	first    int64    // first LSN of the active segment
	size     int64    // bytes in the active segment
	nextLSN  int64    // LSN the next Append will assign
	lastSync time.Time
	buf      []byte
	closed   bool
}

// segName returns the file name of the segment whose first record has
// the given LSN.
func segName(firstLSN int64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, firstLSN, segSuffix)
}

// parseSegName extracts the first-LSN from a segment file name.
func parseSegName(name string) (int64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment first-LSNs in dir, ascending.
func listSegments(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var firsts []int64
	for _, e := range ents {
		if first, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	return firsts, nil
}

// Open opens (creating if needed) the log in dir and returns it along
// with the last durable LSN. A torn final frame in the newest segment —
// the residue of a crash mid-append — is truncated away; corruption or
// truncation anywhere else fails with the typed decode error, because
// replaying around it would fabricate state.
func Open(dir string, opts Options) (*Log, int64, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegLen
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, err
	}
	firsts, err := listSegments(dir)
	if err != nil {
		return nil, 0, err
	}
	l := &Log{dir: dir, opts: opts, nextLSN: 1}
	if len(firsts) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, 0, err
		}
		return l, 0, nil
	}
	// Segments below a checkpoint's durable LSN are legitimately
	// deleted by TruncateBefore, so the log may begin at any LSN;
	// within it, coverage must be gapless. Replay separately refuses a
	// log whose start is past the snapshot it must extend.
	l.nextLSN = firsts[0]
	// Walk every sealed segment strictly (any decode error is fatal
	// there), then scan the newest one tolerating only a torn tail,
	// which is truncated so the next Append lands on a clean boundary.
	for i, first := range firsts {
		path := filepath.Join(dir, segName(first))
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, 0, err
		}
		if first != l.nextLSN {
			return nil, 0, fmt.Errorf("%w: segment %s starts at LSN %d, want %d", ErrCorrupt, segName(first), first, l.nextLSN)
		}
		off := 0
		last := i == len(firsts)-1
		for off < len(b) {
			_, n, err := DecodeRecord(b[off:])
			if err != nil {
				if last && isTruncated(err) {
					if terr := os.Truncate(path, int64(off)); terr != nil {
						return nil, 0, terr
					}
					break
				}
				return nil, 0, fmt.Errorf("segment %s, LSN %d: %w", segName(first), l.nextLSN, err)
			}
			off += n
			l.nextLSN++
		}
		if last {
			if err := l.openSegment(first); err != nil {
				return nil, 0, err
			}
			l.size = int64(off)
		}
	}
	return l, l.nextLSN - 1, nil
}

func isTruncated(err error) bool {
	for e := err; e != nil; {
		if e == ErrTruncated {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// openSegment opens (append mode) the segment starting at firstLSN as
// the active one.
func (l *Log) openSegment(firstLSN int64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(firstLSN)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.first = firstLSN
	l.size = 0
	return nil
}

// Append logs rec and returns its LSN. Durability on return depends on
// the sync policy; with SyncAlways the record has been fsynced.
func (l *Log) Append(rec Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	l.buf = AppendRecord(l.buf[:0], rec)
	if _, err := l.f.Write(l.buf); err != nil {
		return 0, err
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.size += int64(len(l.buf))
	if m := l.opts.Metrics; m != nil {
		m.Appends.Inc()
		m.AppendedBytes.Add(int64(len(l.buf)))
	}
	if err := l.maybeSync(); err != nil {
		return 0, err
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// maybeSync applies the sync policy after a write. Caller holds l.mu.
func (l *Log) maybeSync() error {
	switch l.opts.Policy {
	case SyncAlways:
		return l.fsync()
	case SyncInterval:
		now := time.Now
		if l.opts.Now != nil {
			now = l.opts.Now
		}
		if t := now(); t.Sub(l.lastSync) >= l.opts.SyncEvery {
			l.lastSync = t
			return l.fsync()
		}
	}
	return nil
}

// fsync syncs the active segment through the injectable hook. Caller
// holds l.mu.
func (l *Log) fsync() error {
	fn := (*os.File).Sync
	if l.opts.Fsync != nil {
		fn = l.opts.Fsync
	}
	if m := l.opts.Metrics; m != nil {
		start := time.Now()
		err := fn(l.f)
		m.Fsyncs.Inc()
		m.FsyncSeconds.Observe(time.Since(start).Seconds())
		return err
	}
	return fn(l.f)
}

// rotate seals the active segment and starts a fresh one whose first
// record will be nextLSN. Caller holds l.mu.
func (l *Log) rotate() error {
	if err := l.fsync(); err != nil {
		return err
	}
	if err := l.openSegment(l.nextLSN); err != nil {
		return err
	}
	if m := l.opts.Metrics; m != nil {
		m.Rotations.Inc()
	}
	return syncDir(l.dir)
}

// Rotate seals the active segment so a subsequent snapshot-then-
// TruncateBefore can delete it. No-op on an empty active segment.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.size == 0 {
		return nil
	}
	return l.rotate()
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.fsync()
}

// NextLSN returns the LSN the next Append will assign.
func (l *Log) NextLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// TruncateBefore deletes sealed segments whose every record has
// LSN <= durableLSN — those made redundant by a snapshot at that LSN.
// The active segment is never deleted.
func (l *Log) TruncateBefore(durableLSN int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	firsts, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	// A segment covers [first, nextSegFirst). It is deletable when the
	// following segment exists (so it is sealed) and starts at or
	// below durableLSN+1.
	for i := 0; i+1 < len(firsts); i++ {
		if firsts[i+1] > durableLSN+1 {
			break
		}
		if firsts[i] == l.first {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(firsts[i]))); err != nil {
			return err
		}
		if m := l.opts.Metrics; m != nil {
			m.TruncatedSegments.Inc()
		}
	}
	return syncDir(l.dir)
}

// Close fsyncs and closes the active segment. Idempotent: second and
// later calls return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	err := l.fsync()
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so renames/removals within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
