package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ShardState is one shard's live image in a snapshot: the global-id
// directory and the quantized row data (IDs[i] owns Data[i*Dims :
// (i+1)*Dims]), both in ascending-id order as Materialize returns them.
type ShardState struct {
	IDs  []int
	Data []float64
}

// Snapshot is the full engine state as of LSN: replaying the log
// strictly after LSN on top of it reconstructs the crashed engine
// bit-for-bit.
type Snapshot struct {
	LSN    int64
	Dims   int
	NextID int // next global id the engine would assign
	RR     int // round-robin insert cursor
	Shards []ShardState
}

// Snapshot file layout, little-endian throughout:
//
//	[8B magic "PIMSNAP1"][4B version=1]
//	[8B lsn][4B dims][8B nextID][4B rr][4B nShards]
//	per shard: [4B rows][rows × 8B id][rows×dims × 8B Float64bits]
//	[4B CRC-32C of everything before it]
const (
	snapMagic   = "PIMSNAP1"
	snapVersion = 1
	snapPrefix  = "snap-"
	snapSuffix  = ".pimsnap"
)

// ErrNoSnapshot reports that a directory holds no valid snapshot.
var ErrNoSnapshot = fmt.Errorf("wal: no snapshot")

func snapName(lsn int64) string {
	return fmt.Sprintf("%s%016d%s", snapPrefix, lsn, snapSuffix)
}

func parseSnapName(name string) (int64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// EncodeSnapshot renders s to its file bytes.
func EncodeSnapshot(s *Snapshot) []byte {
	n := len(snapMagic) + 4 + 8 + 4 + 8 + 4 + 4
	for _, sh := range s.Shards {
		n += 4 + 8*len(sh.IDs) + 8*len(sh.Data)
	}
	b := make([]byte, 0, n+4)
	b = append(b, snapMagic...)
	b = le32(b, snapVersion)
	b = le64(b, uint64(s.LSN))
	b = le32(b, uint32(s.Dims))
	b = le64(b, uint64(s.NextID))
	b = le32(b, uint32(s.RR))
	b = le32(b, uint32(len(s.Shards)))
	for _, sh := range s.Shards {
		b = le32(b, uint32(len(sh.IDs)))
		for _, id := range sh.IDs {
			b = le64(b, uint64(id))
		}
		for _, v := range sh.Data {
			b = le64(b, math.Float64bits(v))
		}
	}
	return le32(b, crc32.Checksum(b, castagnoli))
}

func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(b []byte, v uint64) []byte {
	b = le32(b, uint32(v))
	return le32(b, uint32(v>>32))
}

// DecodeSnapshot parses snapshot file bytes, verifying magic, version
// and the trailing CRC. Failures are ErrCorrupt/ErrTruncated typed like
// record decoding; it never panics on hostile input.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < len(snapMagic)+4+8+4+8+4+4+4 {
		return nil, fmt.Errorf("%w: %d-byte snapshot", ErrTruncated, len(b))
	}
	if string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	body, crcB := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(crcB); got != want {
		return nil, fmt.Errorf("%w: snapshot CRC %08x != %08x", ErrCorrupt, got, want)
	}
	r := &byteReader{b: body, off: len(snapMagic)}
	if v := r.u32(); v != snapVersion {
		return nil, fmt.Errorf("%w: snapshot version %d", ErrCorrupt, v)
	}
	s := &Snapshot{
		LSN:    int64(r.u64()),
		Dims:   int(r.u32()),
		NextID: int(int64(r.u64())),
		RR:     int(r.u32()),
	}
	nShards := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if s.LSN < 0 || s.Dims <= 0 || s.Dims > MaxDim || s.NextID < 0 || nShards < 1 || nShards > 1<<20 || s.RR < 0 || s.RR >= nShards {
		return nil, fmt.Errorf("%w: snapshot header lsn=%d dims=%d nextID=%d rr=%d shards=%d", ErrCorrupt, s.LSN, s.Dims, s.NextID, s.RR, nShards)
	}
	s.Shards = make([]ShardState, nShards)
	for i := range s.Shards {
		rows := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		// Each row costs 8 bytes of id plus 8*dims of data, so a row
		// count the remaining body cannot hold is corrupt — reject
		// before allocating what a hostile header asks for.
		if rows < 0 || rows > (len(body)-r.off)/(8+8*s.Dims) {
			return nil, fmt.Errorf("%w: shard %d claims %d rows", ErrCorrupt, i, rows)
		}
		sh := ShardState{IDs: make([]int, rows), Data: make([]float64, rows*s.Dims)}
		for j := range sh.IDs {
			sh.IDs[j] = int(int64(r.u64()))
		}
		for j := range sh.Data {
			sh.Data[j] = math.Float64frombits(r.u64())
		}
		if r.err != nil {
			return nil, r.err
		}
		s.Shards[i] = sh
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(body)-r.off)
	}
	return s, nil
}

// byteReader is a little cursor with sticky ErrTruncated.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = fmt.Errorf("%w: snapshot body", ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *byteReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.err = fmt.Errorf("%w: snapshot body", ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// WriteSnapshot writes s into dir atomically: temp file, fsync, rename,
// directory fsync. A crash at any point leaves either no new file or a
// complete one; the previous snapshot is untouched until
// RemoveSnapshotsBefore.
func WriteSnapshot(dir string, s *Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b := EncodeSnapshot(s)
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapName(s.LSN))); err != nil {
		return err
	}
	return syncDir(dir)
}

// LatestSnapshot loads the highest-LSN valid snapshot in dir, skipping
// over unreadable or corrupt files (a torn temp rename cannot produce
// one, but a damaged disk can — the older snapshot plus a longer replay
// still recovers). Returns ErrNoSnapshot when none decodes.
func LatestSnapshot(dir string) (*Snapshot, error) {
	lsns, err := listSnapshots(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoSnapshot
		}
		return nil, err
	}
	for i := len(lsns) - 1; i >= 0; i-- {
		b, err := os.ReadFile(filepath.Join(dir, snapName(lsns[i])))
		if err != nil {
			continue
		}
		s, err := DecodeSnapshot(b)
		if err != nil {
			continue
		}
		return s, nil
	}
	return nil, ErrNoSnapshot
}

// RemoveSnapshotsBefore deletes snapshots with LSN < keepLSN.
func RemoveSnapshotsBefore(dir string, keepLSN int64) error {
	lsns, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	for _, lsn := range lsns {
		if lsn < keepLSN {
			if err := os.Remove(filepath.Join(dir, snapName(lsn))); err != nil {
				return err
			}
		}
	}
	return syncDir(dir)
}

func listSnapshots(dir string) ([]int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var lsns []int64
	for _, e := range ents {
		if lsn, ok := parseSnapName(e.Name()); ok && !e.IsDir() {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}
