// Package wal gives the mutable store its durability: an append-only
// write-ahead log of insert/update/delete records plus atomic epoch
// snapshots, so a crashed-and-recovered engine renders byte-identically
// to the pre-crash engine.
//
// The log is a directory of segment files (wal-<firstLSN>.seg). Every
// record is one length-prefixed, CRC-checked binary frame; LSNs are
// assigned sequentially across segments, so a record's position in the
// log IS its LSN and replay order equals append order. The decoder is
// strict: a frame that does not parse is either ErrTruncated (the byte
// stream ends mid-frame — the torn tail a crash leaves behind) or
// ErrCorrupt (the bytes are all present but wrong — bad CRC, bad op,
// inconsistent lengths). Corruption is never silently skipped; only a
// torn tail at the very end of the newest segment is tolerated, because
// that is exactly the state a crash mid-append leaves and every byte
// before it is CRC-verified.
//
// Snapshots (snap-<lsn>.pimsnap) capture the full engine state as of an
// LSN — per-shard live rows with their global-id directories, the
// next-id watermark and the round-robin insert cursor — written to a
// temp file, fsynced and renamed, so a crash mid-snapshot leaves the
// previous snapshot intact. Compaction of the log is snapshot-then-
// truncate: sealed segments at or below the snapshot LSN are deleted.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Op is a mutation kind.
type Op uint8

// The logged mutation kinds. Values are part of the on-disk format.
const (
	OpInsert Op = 1
	OpUpdate Op = 2
	OpDelete Op = 3
)

// Typed decode errors. Replay distinguishes them deliberately: a torn
// tail (ErrTruncated at the end of the newest segment) is the normal
// residue of a crash and is discarded; ErrCorrupt anywhere, or
// truncation anywhere else, refuses recovery rather than serving a
// silently wrong dataset.
var (
	// ErrCorrupt reports a frame whose bytes are present but wrong:
	// CRC mismatch, unknown op, or inconsistent lengths.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrTruncated reports a byte stream that ends mid-frame.
	ErrTruncated = errors.New("wal: truncated record")
	// ErrClosed reports an append to a closed log.
	ErrClosed = errors.New("wal: log closed")
)

// Record is one logged mutation. Vec is nil for OpDelete. Shard is the
// owning shard at apply time, so replay routes without re-deriving
// placement.
type Record struct {
	Op    Op
	Shard int
	ID    int
	Vec   []float64
}

// Frame layout: [4B payload length][4B CRC-32C of payload][payload],
// payload = [1B op][4B shard][8B id][4B dim][dim × 8B Float64bits],
// all little-endian. MaxDim bounds the decoder's allocation so a
// corrupt length prefix cannot demand gigabytes.
const (
	frameHeader   = 8
	payloadHeader = 17
	// MaxDim is the largest vector dimensionality a record may carry.
	MaxDim = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// payloadLen returns the encoded payload size of a record with d dims.
func payloadLen(d int) int { return payloadHeader + 8*d }

// AppendRecord appends rec's frame to buf and returns the extended
// slice. It never fails: Record fields are validated by the caller
// (the engine logs only mutations it has already accepted).
func AppendRecord(buf []byte, rec Record) []byte {
	plen := payloadLen(len(rec.Vec))
	start := len(buf)
	buf = append(buf, make([]byte, frameHeader+plen)...)
	payload := buf[start+frameHeader:]
	payload[0] = byte(rec.Op)
	binary.LittleEndian.PutUint32(payload[1:], uint32(rec.Shard))
	binary.LittleEndian.PutUint64(payload[5:], uint64(rec.ID))
	binary.LittleEndian.PutUint32(payload[13:], uint32(len(rec.Vec)))
	for i, v := range rec.Vec {
		binary.LittleEndian.PutUint64(payload[payloadHeader+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(plen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// DecodeRecord decodes the first frame of b, returning the record and
// the number of bytes consumed. It is a pure function of the bytes —
// the FuzzWALDecode target — and never panics: every failure is either
// ErrTruncated (b ends mid-frame) or ErrCorrupt (inconsistent bytes).
// An accepted record re-encodes to the identical frame bytes.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, fmt.Errorf("%w: %d-byte frame header", ErrTruncated, len(b))
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen < payloadHeader || plen > payloadLen(MaxDim) {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	if len(b) < frameHeader+plen {
		return Record{}, 0, fmt.Errorf("%w: payload needs %d bytes, have %d", ErrTruncated, plen, len(b)-frameHeader)
	}
	payload := b[frameHeader : frameHeader+plen]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[4:]); got != want {
		return Record{}, 0, fmt.Errorf("%w: CRC %08x != %08x", ErrCorrupt, got, want)
	}
	rec := Record{
		Op:    Op(payload[0]),
		Shard: int(binary.LittleEndian.Uint32(payload[1:])),
		ID:    int(int64(binary.LittleEndian.Uint64(payload[5:]))),
	}
	dim := int(binary.LittleEndian.Uint32(payload[13:]))
	if plen != payloadLen(dim) {
		return Record{}, 0, fmt.Errorf("%w: %d dims need %d payload bytes, frame has %d", ErrCorrupt, dim, payloadLen(dim), plen)
	}
	switch rec.Op {
	case OpInsert, OpUpdate:
		if dim == 0 {
			return Record{}, 0, fmt.Errorf("%w: op %d without a vector", ErrCorrupt, rec.Op)
		}
	case OpDelete:
		if dim != 0 {
			return Record{}, 0, fmt.Errorf("%w: delete carrying %d dims", ErrCorrupt, dim)
		}
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown op %d", ErrCorrupt, payload[0])
	}
	if rec.ID < 0 || rec.Shard < 0 {
		return Record{}, 0, fmt.Errorf("%w: negative id %d or shard %d", ErrCorrupt, rec.ID, rec.Shard)
	}
	if dim > 0 {
		rec.Vec = make([]float64, dim)
		for i := range rec.Vec {
			rec.Vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[payloadHeader+8*i:]))
		}
	}
	return rec, frameHeader + plen, nil
}
