package wal

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pimmine/internal/obs"
)

func rec(op Op, shard, id int, vec ...float64) Record {
	return Record{Op: op, Shard: shard, ID: id, Vec: vec}
}

func TestRecordRoundTrip(t *testing.T) {
	t.Parallel()
	recs := []Record{
		rec(OpInsert, 0, 0, 1.5, -2.25, math.Pi),
		rec(OpUpdate, 3, 17, 0, math.Copysign(0, -1), math.MaxFloat64, math.SmallestNonzeroFloat64),
		rec(OpDelete, 2, 41),
		rec(OpInsert, 1<<20, 1<<40, math.Inf(1), math.Inf(-1), math.NaN()),
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Op != want.Op || got.Shard != want.Shard || got.ID != want.ID || len(got.Vec) != len(want.Vec) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		for j := range want.Vec {
			if math.Float64bits(got.Vec[j]) != math.Float64bits(want.Vec[j]) {
				t.Fatalf("record %d dim %d: bits %x != %x", i, j, math.Float64bits(got.Vec[j]), math.Float64bits(want.Vec[j]))
			}
		}
		// Bit-exact re-encode: the frame bytes are canonical.
		if re := AppendRecord(nil, got); !bytes.Equal(re, buf[off:off+n]) {
			t.Fatalf("record %d: re-encode differs", i)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	t.Parallel()
	good := AppendRecord(nil, rec(OpInsert, 1, 7, 1, 2, 3))
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", good[:5], ErrTruncated},
		{"torn payload", good[:len(good)-3], ErrTruncated},
		{"bad crc", flip(good, len(good)-1), ErrCorrupt},
		{"bad op", reframe(good, func(p []byte) { p[0] = 99 }), ErrCorrupt},
		{"delete with dims", AppendRecord(nil, Record{Op: OpDelete, ID: 1, Vec: []float64{1}}), ErrCorrupt},
		{"insert without dims", AppendRecord(nil, Record{Op: OpInsert, ID: 1}), ErrCorrupt},
		{"negative id", AppendRecord(nil, Record{Op: OpDelete, ID: -1}), ErrCorrupt},
		{"tiny payload len", flip(good, 0), ErrCorrupt},
	}
	for _, tc := range cases {
		if _, _, err := DecodeRecord(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// flip returns a copy of b with one bit flipped at byte i.
func flip(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 1
	return c
}

// reframe mutates a copy of frame's payload via fn and recomputes the
// CRC so only the payload content is wrong, not the checksum.
func reframe(frame []byte, fn func(payload []byte)) []byte {
	r, _, err := DecodeRecord(frame)
	if err != nil {
		panic(err)
	}
	c := AppendRecord(nil, r)
	fn(c[frameHeader:])
	crc := crcOf(c[frameHeader:])
	c[4], c[5], c[6], c[7] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	return c
}

func crcOf(p []byte) uint32 {
	return crc32.Checksum(p, castagnoli)
}

func TestLogAppendReplay(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	l, last, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if last != 0 {
		t.Fatalf("fresh log last LSN = %d", last)
	}
	want := []Record{
		rec(OpInsert, 0, 1, 1, 2),
		rec(OpInsert, 1, 2, 3, 4),
		rec(OpDelete, 0, 1),
		rec(OpUpdate, 1, 2, 5, 6),
	}
	for i, r := range want {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != int64(i+1) {
			t.Fatalf("append %d: LSN %d", i, lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	var got []Record
	if err := Replay(dir, 0, func(lsn int64, r Record) error {
		if lsn != int64(len(got)+1) {
			t.Fatalf("replay LSN %d at position %d", lsn, len(got))
		}
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	// afterLSN skips the prefix.
	n := 0
	if err := Replay(dir, 2, func(lsn int64, r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replay after LSN 2 visited %d records", n)
	}
}

func TestLogRotationAndTruncate(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	// Tiny segments: every ~2 records rotates.
	frame := len(AppendRecord(nil, rec(OpInsert, 0, 1, 1, 2)))
	l, _, err := Open(dir, Options{SegmentBytes: int64(2 * frame)})
	if err != nil {
		t.Fatal(err)
	}
	const total = 9
	for i := 0; i < total; i++ {
		if _, err := l.Append(rec(OpInsert, 0, i, float64(i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	firsts, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(firsts) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(firsts))
	}
	// Truncating before LSN 6 must keep every record > 6 replayable and
	// delete at least one sealed segment.
	if err := l.TruncateBefore(6); err != nil {
		t.Fatal(err)
	}
	after, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(firsts) {
		t.Fatalf("TruncateBefore deleted nothing: %d -> %d segments", len(firsts), len(after))
	}
	var lsns []int64
	if err := Replay(dir, 6, func(lsn int64, r Record) error {
		lsns = append(lsns, lsn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != total-6 || lsns[0] != 7 || lsns[len(lsns)-1] != total {
		t.Fatalf("replay after truncation: LSNs %v", lsns)
	}
	// Replay from 0 must refuse: the prefix is gone.
	if err := Replay(dir, 0, func(int64, Record) error { return nil }); !errors.Is(err, ErrTruncated) {
		t.Fatalf("replay of truncated prefix = %v, want ErrTruncated", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(rec(OpInsert, 0, i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop 5 bytes off the last (only) segment.
	firsts, _ := listSegments(dir)
	path := filepath.Join(dir, segName(firsts[len(firsts)-1]))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	// Replay tolerates the torn tail: records 1 and 2 survive.
	n := 0
	if err := Replay(dir, 0, func(int64, Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("torn-tail replay visited %d records, want 2", n)
	}
	// Open truncates it and appends land on a clean boundary.
	l2, last, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if last != 2 {
		t.Fatalf("post-tear Open last LSN = %d, want 2", last)
	}
	if lsn, err := l2.Append(rec(OpInsert, 0, 9, 9)); err != nil || lsn != 3 {
		t.Fatalf("post-tear append: lsn=%d err=%v", lsn, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	n = 0
	if err := Replay(dir, 0, func(int64, Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("post-repair replay visited %d records, want 3", n)
	}
}

func TestCorruptMiddleRefused(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(rec(OpInsert, 0, i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	firsts, _ := listSegments(dir)
	path := filepath.Join(dir, segName(firsts[0]))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF // bit-flip mid-log, not at the tail
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(dir, 0, func(int64, Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption replay = %v, want ErrCorrupt", err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption Open = %v, want ErrCorrupt", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	t.Parallel()
	count := func(opts Options, appends int) int {
		n := 0
		opts.Fsync = func(f *os.File) error { n++; return f.Sync() }
		dir := t.TempDir()
		l, _, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < appends; i++ {
			if _, err := l.Append(rec(OpInsert, 0, i, 1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := count(Options{Policy: SyncAlways}, 5); n < 5 {
		t.Errorf("SyncAlways fsynced %d times for 5 appends", n)
	}
	if n := count(Options{Policy: SyncNever}, 5); n != 1 { // only the Close sync
		t.Errorf("SyncNever fsynced %d times, want 1 (Close)", n)
	}
	// SyncInterval over a fake clock: every other append crosses the
	// period boundary.
	tick := time.Unix(0, 0)
	opts := Options{Policy: SyncInterval, SyncEvery: 2 * time.Second, Now: func() time.Time {
		tick = tick.Add(time.Second)
		return tick
	}}
	if n := count(opts, 6); n < 3 || n > 4 { // 3 interval syncs + Close
		t.Errorf("SyncInterval fsynced %d times for 6 appends at 1s/2s", n)
	}
}

func TestSnapshotRoundTripAndLatest(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s1 := &Snapshot{LSN: 4, Dims: 2, NextID: 7, RR: 1, Shards: []ShardState{
		{IDs: []int{0, 2}, Data: []float64{1, 2, 3, 4}},
		{IDs: []int{1}, Data: []float64{5, math.Pi}},
	}}
	if _, err := LatestSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir LatestSnapshot = %v, want ErrNoSnapshot", err)
	}
	if err := WriteSnapshot(dir, s1); err != nil {
		t.Fatal(err)
	}
	s2 := &Snapshot{LSN: 9, Dims: 2, NextID: 9, RR: 0, Shards: []ShardState{
		{IDs: []int{0, 2, 7}, Data: []float64{1, 2, 3, 4, 8, 8}},
		{IDs: []int{1, 8}, Data: []float64{5, math.Pi, 9, 9}},
	}}
	if err := WriteSnapshot(dir, s2); err != nil {
		t.Fatal(err)
	}
	got, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 9 || got.NextID != 9 || got.RR != 0 || len(got.Shards) != 2 {
		t.Fatalf("latest snapshot header: %+v", got)
	}
	for i, sh := range got.Shards {
		for j, v := range sh.Data {
			if math.Float64bits(v) != math.Float64bits(s2.Shards[i].Data[j]) {
				t.Fatalf("shard %d data %d: bits differ", i, j)
			}
		}
		for j, id := range sh.IDs {
			if id != s2.Shards[i].IDs[j] {
				t.Fatalf("shard %d id %d: %d != %d", i, j, id, s2.Shards[i].IDs[j])
			}
		}
	}
	// Corrupting the newest snapshot falls back to the older one.
	path := filepath.Join(dir, snapName(9))
	b, _ := os.ReadFile(path)
	b[len(b)/3] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 4 {
		t.Fatalf("fallback snapshot LSN = %d, want 4", got.LSN)
	}
	// RemoveSnapshotsBefore keeps only >= keepLSN.
	if err := RemoveSnapshotsBefore(dir, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := LatestSnapshot(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("after removal only the corrupt snapshot remains; LatestSnapshot = %v, want ErrNoSnapshot", err)
	}
}

func TestSnapshotDecodeHostile(t *testing.T) {
	t.Parallel()
	good := EncodeSnapshot(&Snapshot{LSN: 1, Dims: 3, NextID: 2, Shards: []ShardState{{IDs: []int{0}, Data: []float64{1, 2, 3}}}})
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad magic", flip(good, 0), ErrCorrupt},
		{"bad crc", flip(good, len(good)/2), ErrCorrupt},
		// A chopped file's trailing 4 bytes are not its CRC, so
		// truncation inside the body surfaces as ErrCorrupt; only a
		// file too short to even hold the header is ErrTruncated.
		{"truncated", good[:len(good)-9], ErrCorrupt},
		{"too short for header", good[:12], ErrTruncated},
	}
	for _, tc := range cases {
		if _, err := DecodeSnapshot(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// A huge claimed row count must be rejected before allocation, not
	// OOM: rows field sits right after the header for shard 0.
	huge := append([]byte(nil), good...)
	// Rewrite rows (offset: magic+4+8+4+8+4+4) to an absurd value and
	// fix the CRC so only the semantic check can catch it.
	off := len(snapMagic) + 4 + 8 + 4 + 8 + 4 + 4
	huge[off] = 0xFF
	huge[off+1] = 0xFF
	huge[off+2] = 0xFF
	huge[off+3] = 0x7F
	crc := crc32.Checksum(huge[:len(huge)-4], castagnoli)
	huge[len(huge)-4], huge[len(huge)-3], huge[len(huge)-2], huge[len(huge)-1] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	if _, err := DecodeSnapshot(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("hostile row count: got %v, want ErrCorrupt", err)
	}
}

func TestMetricsPublish(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	dir := t.TempDir()
	frame := len(AppendRecord(nil, rec(OpInsert, 0, 1, 1)))
	l, _, err := Open(dir, Options{SegmentBytes: int64(2 * frame), Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(rec(OpInsert, 0, i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := m.Appends.Value(); got != 5 {
		t.Errorf("Appends = %d, want 5", got)
	}
	if got := m.AppendedBytes.Value(); got != int64(5*frame) {
		t.Errorf("AppendedBytes = %d, want %d", got, 5*frame)
	}
	if m.Fsyncs.Value() == 0 || m.Rotations.Value() == 0 {
		t.Errorf("Fsyncs = %d, Rotations = %d, want both > 0", m.Fsyncs.Value(), m.Rotations.Value())
	}
}

func TestAppendAfterFsyncFailure(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	fail := false
	l, _, err := Open(dir, Options{Fsync: func(f *os.File) error {
		if fail {
			return errors.New("injected fsync failure")
		}
		return f.Sync()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(rec(OpInsert, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	fail = true
	if _, err := l.Append(rec(OpInsert, 0, 2, 2)); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	// Close surfaces the failure too, but the log still closes: a
	// second Close is ErrClosed, not a double free.
	if err := l.Close(); err == nil {
		t.Fatal("Close with failing fsync reported success")
	}
	if err := l.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}
