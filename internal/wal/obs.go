package wal

import "pimmine/internal/obs"

// Metrics holds the obs handles the log and recovery path publish to.
// Every field is optional (nil handles are safe no-ops, matching
// internal/obs), so the zero Metrics keeps appends observation-free.
type Metrics struct {
	// Appends and AppendedBytes count durable-intent writes to the log.
	Appends       *obs.Counter
	AppendedBytes *obs.Counter
	// Fsyncs counts sync calls; FsyncSeconds is their latency — the
	// per-mutation durability tax under SyncAlways.
	Fsyncs       *obs.Counter
	FsyncSeconds *obs.Histogram
	// Rotations and TruncatedSegments track segment lifecycle: sealed
	// actives and checkpoint-deleted sealed segments.
	Rotations         *obs.Counter
	TruncatedSegments *obs.Counter
	// Snapshots counts checkpoint images written; ReplayedRecords the
	// log records re-applied during the last recovery; ReplaySeconds
	// the recovery replay wall clock.
	Snapshots       *obs.Counter
	ReplayedRecords *obs.Gauge
	ReplaySeconds   *obs.Histogram
}

// NewMetrics registers the standard WAL metric set on a registry.
func NewMetrics(reg *obs.Registry, labels ...obs.Label) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Appends:       reg.Counter("pim_wal_appends_total", "Records appended to the write-ahead log.", labels...),
		AppendedBytes: reg.Counter("pim_wal_appended_bytes_total", "Frame bytes appended to the write-ahead log.", labels...),
		Fsyncs:        reg.Counter("pim_wal_fsyncs_total", "fsync calls issued by the log.", labels...),
		FsyncSeconds: reg.Histogram("pim_wal_fsync_seconds",
			"fsync latency (the per-mutation durability tax under SyncAlways).",
			obs.ExpBuckets(1e-5, 4, 10), labels...),
		Rotations:         reg.Counter("pim_wal_rotations_total", "Active segments sealed by size rotation or checkpointing.", labels...),
		TruncatedSegments: reg.Counter("pim_wal_truncated_segments_total", "Sealed segments deleted after a covering snapshot.", labels...),
		Snapshots:         reg.Counter("pim_wal_snapshots_total", "Checkpoint snapshots written.", labels...),
		ReplayedRecords:   reg.Gauge("pim_wal_replayed_records", "Log records re-applied during the most recent recovery.", labels...),
		ReplaySeconds: reg.Histogram("pim_wal_replay_seconds",
			"Recovery replay wall clock.",
			obs.ExpBuckets(1e-4, 4, 10), labels...),
	}
}
