// Package pimbound implements the paper's core contribution: PIM-aware
// function decomposition (§V-A, Table 4) and PIM-aware bound computation
// (§V-B, Theorems 1–2).
//
// A similarity or bound function F(p,q) is decomposed as
//
//	F(p,q) = G(Φ(p), Φ(q), p·q)
//
// where Φ(p) is precomputed offline per dataset object, Φ(q) is computed
// once per query on the host, the dot product runs on the ReRAM PIM array
// over non-negative integer vectors, and G combines the three in O(1) on
// the host. Because crossbars only handle non-negative integers, float
// data is quantized (internal/quant) and the G formulas here produce
// *provable* lower bounds (for ED-family functions) or upper bounds (for
// CS/PCC), so filter-and-refinement keeps results exact.
//
// The dot products themselves are produced by internal/pim; this package
// only defines the offline features and the G combinators, plus host-side
// reference dot products used by tests.
//
// Every G here consumes the PIM dot product monotonically: lower bounds
// as −2·(p̄·q̄), upper bounds as +(p̄·q̄). internal/fault exploits that to
// extend Theorem 3's error-envelope argument to hardware faults: a
// faulty array returns dot + error + |envelope| ≥ dot, which can only
// loosen these bounds — so filter-and-refine stays exact under bounded
// stuck-at/drift/read-noise faults with no change to this package.
package pimbound

import (
	"fmt"
	"math"

	"pimmine/internal/measure"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// ---------------------------------------------------------------------------
// LB_PIM-ED (Theorem 1): for p,q ∈ [0,1]^d quantized with factor α,
//
//	LB_PIM-ED(p,q) = (Φ(p̄) + Φ(q̄) − 2·⌊p̄⌋·⌊q̄⌋ − 2d) / α² ≤ ED(p,q)
//
// with Φ(p̄) = Σ p̄ᵢ² − 2 Σ ⌊p̄ᵢ⌋. The proof uses
// ⌊p̄ᵢ⌋⌊q̄ᵢ⌋ + ⌊p̄ᵢ⌋ + ⌊q̄ᵢ⌋ + 1 = (⌊p̄ᵢ⌋+1)(⌊q̄ᵢ⌋+1) ≥ p̄ᵢ·q̄ᵢ.
// ---------------------------------------------------------------------------

// EDIndex holds the offline features for LB_PIM-ED: per-object Φ(p̄) (kept
// in the memory array) and the integer floor vectors (programmed onto the
// PIM array by internal/pim).
type EDIndex struct {
	Q      quant.Quantizer
	D      int
	Phi    []float64 // Φ(p̄) per object
	Floors []uint32  // N×D row-major ⌊p̄⌋, the crossbar payload
	n      int
}

// EDQuery holds the once-per-query features for LB_PIM-ED.
type EDQuery struct {
	Phi   float64
	Floor []uint32
}

// BuildED precomputes LB_PIM-ED features for every row of m (values must
// be normalized to [0,1]).
func BuildED(m *vec.Matrix, q quant.Quantizer) *EDIndex {
	ix := &EDIndex{Q: q, D: m.D, Phi: make([]float64, m.N), Floors: make([]uint32, m.N*m.D), n: m.N}
	for i := 0; i < m.N; i++ {
		ix.Phi[i] = edFeatures(m.Row(i), q, ix.Floors[i*m.D:(i+1)*m.D])
	}
	return ix
}

// N returns the number of indexed objects.
func (ix *EDIndex) N() int { return ix.n }

// Floor returns object i's quantized vector (shared storage).
func (ix *EDIndex) Floor(i int) []uint32 { return ix.Floors[i*ix.D : (i+1)*ix.D] }

// Query computes Φ(q̄) and ⌊q̄⌋ for a query vector.
func (ix *EDIndex) Query(qv []float64) EDQuery {
	return ix.QueryInto(qv, make([]uint32, ix.D))
}

// QueryInto is Query writing the floors into a caller-owned buffer of len
// D — the allocation-free form the steady-state search paths use. The
// returned EDQuery aliases floor.
func (ix *EDIndex) QueryInto(qv []float64, floor []uint32) EDQuery {
	if len(qv) != ix.D {
		panic(fmt.Sprintf("pimbound: query has %d dims, index has %d", len(qv), ix.D))
	}
	if len(floor) != ix.D {
		panic(fmt.Sprintf("pimbound: floor buffer of %d, index has %d dims", len(floor), ix.D))
	}
	phi := edFeatures(qv, ix.Q, floor)
	return EDQuery{Phi: phi, Floor: floor}
}

// LB evaluates Theorem 1's lower bound for object i given the PIM dot
// product ⌊p̄⌋·⌊q̄⌋.
func (ix *EDIndex) LB(i int, qf EDQuery, dot int64) float64 {
	a2 := ix.Q.Alpha * ix.Q.Alpha
	return (ix.Phi[i] + qf.Phi - 2*float64(dot) - 2*float64(ix.D)) / a2
}

// HostDot computes the reference integer dot product on the host; the PIM
// engine must produce exactly this value (property-tested).
func (ix *EDIndex) HostDot(i int, qf EDQuery) int64 {
	return vec.IntDot(ix.Floor(i), qf.Floor)
}

// edFeatures fills floors with ⌊v·α⌋ and returns Φ = Σ(vα)² − 2Σ⌊vα⌋.
func edFeatures(v []float64, q quant.Quantizer, floors []uint32) float64 {
	var phi float64
	for i, x := range v {
		s := q.Scaled(x)
		f := q.Floor(x)
		floors[i] = f
		phi += s*s - 2*float64(f)
	}
	return phi
}

// ---------------------------------------------------------------------------
// LB_PIM-FNN (Theorem 2): apply the same floor trick to LB_FNN's segment
// means and standard deviations (computed on the scaled vector p̄):
//
//	LB_PIM-FNN(p,q) = l/α² · (Φ(p̂) + Φ(q̂) − 2⌊µ(p̂)⌋·⌊µ(q̂)⌋
//	                          − 2⌊σ(p̂)⌋·⌊σ(q̂)⌋ − 4d′) ≤ LB_FNN(p,q) ≤ ED(p,q)
//
// with Φ(p̂) = Σµ(p̂ᵢ)² + Σσ(p̂ᵢ)² − 2Σ⌊µ(p̂ᵢ)⌋ − 2Σ⌊σ(p̂ᵢ)⌋.
// ---------------------------------------------------------------------------

// FNNIndex holds the offline features for LB_PIM-FNN at one granularity:
// per-object Φ(p̂) plus the floored segment-mean and segment-σ vectors
// (both programmed onto the PIM array: Fig 10's "crossbar a / crossbar b").
type FNNIndex struct {
	Q           quant.Quantizer
	Segs, L     int
	Phi         []float64
	MuFloors    []uint32 // N×Segs row-major
	SigmaFloors []uint32 // N×Segs row-major
	n           int
}

// FNNQuery holds the once-per-query features for LB_PIM-FNN.
type FNNQuery struct {
	Phi                 float64
	MuFloor, SigmaFloor []uint32
}

// BuildFNN precomputes LB_PIM-FNN features with segs segments (m.D must be
// divisible by segs; values must be normalized to [0,1]).
func BuildFNN(m *vec.Matrix, q quant.Quantizer, segs int) (*FNNIndex, error) {
	if segs <= 0 || m.D%segs != 0 {
		return nil, fmt.Errorf("pimbound: cannot split %d dims into %d segments", m.D, segs)
	}
	ix := &FNNIndex{
		Q: q, Segs: segs, L: m.D / segs,
		Phi:         make([]float64, m.N),
		MuFloors:    make([]uint32, m.N*segs),
		SigmaFloors: make([]uint32, m.N*segs),
		n:           m.N,
	}
	for i := 0; i < m.N; i++ {
		phi, err := fnnFeatures(m.Row(i), q, segs,
			ix.MuFloors[i*segs:(i+1)*segs], ix.SigmaFloors[i*segs:(i+1)*segs])
		if err != nil {
			return nil, err
		}
		ix.Phi[i] = phi
	}
	return ix, nil
}

// N returns the number of indexed objects.
func (ix *FNNIndex) N() int { return ix.n }

// MuFloor returns object i's floored segment means (shared storage).
func (ix *FNNIndex) MuFloor(i int) []uint32 { return ix.MuFloors[i*ix.Segs : (i+1)*ix.Segs] }

// SigmaFloor returns object i's floored segment σ (shared storage).
func (ix *FNNIndex) SigmaFloor(i int) []uint32 { return ix.SigmaFloors[i*ix.Segs : (i+1)*ix.Segs] }

// Query computes the query-side features once per query.
func (ix *FNNIndex) Query(qv []float64) (FNNQuery, error) {
	return ix.QueryInto(qv, make([]uint32, ix.Segs), make([]uint32, ix.Segs))
}

// QueryInto is Query writing the floored segment statistics into
// caller-owned buffers (both len Segs) — the allocation-free form the
// steady-state search paths use. The returned FNNQuery aliases mu and sg.
func (ix *FNNIndex) QueryInto(qv []float64, mu, sg []uint32) (FNNQuery, error) {
	if len(mu) != ix.Segs || len(sg) != ix.Segs {
		return FNNQuery{}, fmt.Errorf("pimbound: segment buffers of %d/%d, want %d", len(mu), len(sg), ix.Segs)
	}
	phi, err := fnnFeatures(qv, ix.Q, ix.Segs, mu, sg)
	if err != nil {
		return FNNQuery{}, err
	}
	return FNNQuery{Phi: phi, MuFloor: mu, SigmaFloor: sg}, nil
}

// LB evaluates Theorem 2's lower bound for object i given the two PIM dot
// products over floored means and floored σ.
func (ix *FNNIndex) LB(i int, qf FNNQuery, dotMu, dotSigma int64) float64 {
	a2 := ix.Q.Alpha * ix.Q.Alpha
	return float64(ix.L) / a2 *
		(ix.Phi[i] + qf.Phi - 2*float64(dotMu) - 2*float64(dotSigma) - 4*float64(ix.Segs))
}

// HostDots computes the reference integer dot products on the host.
func (ix *FNNIndex) HostDots(i int, qf FNNQuery) (dotMu, dotSigma int64) {
	return vec.IntDot(ix.MuFloor(i), qf.MuFloor), vec.IntDot(ix.SigmaFloor(i), qf.SigmaFloor)
}

// fnnFeatures computes segment stats of the *scaled* vector v̄ = v·α,
// floors them into mu/sg, and returns Φ(p̂). The per-segment stats are
// computed inline (bit-identical to vec.SegmentStats, which evaluates the
// same Mean and Std per segment) so the query path never allocates.
func fnnFeatures(v []float64, q quant.Quantizer, segs int, mu, sg []uint32) (float64, error) {
	if segs <= 0 || len(v)%segs != 0 {
		return 0, fmt.Errorf("pimbound: cannot split %d dims into %d equal segments", len(v), segs)
	}
	l := len(v) / segs
	var phi float64
	for i := 0; i < segs; i++ {
		seg := v[i*l : (i+1)*l]
		sm := q.Scaled(vec.Mean(seg)) // mean scales linearly with α
		sd := q.Scaled(vec.Std(seg))  // σ scales linearly with α
		fm := uint32(sm)
		fd := uint32(sd)
		mu[i] = fm
		sg[i] = fd
		phi += sm*sm + sd*sd - 2*float64(fm) - 2*float64(fd)
	}
	return phi, nil
}

// ---------------------------------------------------------------------------
// UB_PIM-CS / UB_PIM-PCC: for maximum-similarity search under CS and PCC,
// the same floor trick yields an *upper* bound on the inner product:
//
//	p·q ≤ (⌊p̄⌋·⌊q̄⌋ + Σ⌊p̄⌋ + Σ⌊q̄⌋ + d) / α²
//
// which divided by the (precomputed, exact) norms bounds CS from above,
// and plugged into PCC's Table 4 decomposition
// PCC = (d·p·q − Φb(p)Φb(q)) / (Φa(p)Φa(q)) bounds PCC from above (the
// denominator is positive whenever both vectors are non-constant).
// ---------------------------------------------------------------------------

// CSIndex holds offline features for PIM upper bounds on CS and PCC:
// floor vectors (PIM payload), Σ⌊p̄ᵢ⌋, plus the Table 4 Φ values — the
// norm ‖p‖ for CS and Φa, Φb for PCC.
type CSIndex struct {
	Q      quant.Quantizer
	D      int
	Floors []uint32  // N×D row-major
	SumFlr []float64 // Σ⌊p̄ᵢ⌋ per object
	Norm   []float64 // ‖p‖ per object (CS)
	PhiA   []float64 // √(d·Σp² − (Σp)²) per object (PCC)
	PhiB   []float64 // Σpᵢ per object (PCC)
	n      int
}

// CSQuery holds the once-per-query features.
type CSQuery struct {
	Floor  []uint32
	SumFlr float64
	Norm   float64
	PhiA   float64
	PhiB   float64
}

// BuildCS precomputes CS/PCC upper-bound features for every row of m.
func BuildCS(m *vec.Matrix, q quant.Quantizer) *CSIndex {
	ix := &CSIndex{
		Q: q, D: m.D,
		Floors: make([]uint32, m.N*m.D),
		SumFlr: make([]float64, m.N),
		Norm:   make([]float64, m.N),
		PhiA:   make([]float64, m.N),
		PhiB:   make([]float64, m.N),
		n:      m.N,
	}
	for i := 0; i < m.N; i++ {
		f := csFeatures(m.Row(i), q, ix.Floors[i*m.D:(i+1)*m.D])
		ix.SumFlr[i], ix.Norm[i], ix.PhiA[i], ix.PhiB[i] = f.SumFlr, f.Norm, f.PhiA, f.PhiB
	}
	return ix
}

// N returns the number of indexed objects.
func (ix *CSIndex) N() int { return ix.n }

// Floor returns object i's quantized vector (shared storage).
func (ix *CSIndex) Floor(i int) []uint32 { return ix.Floors[i*ix.D : (i+1)*ix.D] }

// Query computes the query-side features once per query.
func (ix *CSIndex) Query(qv []float64) CSQuery {
	if len(qv) != ix.D {
		panic(fmt.Sprintf("pimbound: query has %d dims, index has %d", len(qv), ix.D))
	}
	floor := make([]uint32, ix.D)
	f := csFeatures(qv, ix.Q, floor)
	f.Floor = floor
	return f
}

// UBDot returns the upper bound on p·q for object i given the PIM dot
// product.
func (ix *CSIndex) UBDot(i int, qf CSQuery, dot int64) float64 {
	a2 := ix.Q.Alpha * ix.Q.Alpha
	return (float64(dot) + ix.SumFlr[i] + qf.SumFlr + float64(ix.D)) / a2
}

// UBCS returns the upper bound on CS(p,q) for object i. Zero-norm vectors
// get an upper bound of 0, matching measure.Cosine's convention.
func (ix *CSIndex) UBCS(i int, qf CSQuery, dot int64) float64 {
	np := ix.Norm[i]
	if np == 0 || qf.Norm == 0 {
		return 0
	}
	return ix.UBDot(i, qf, dot) / (np * qf.Norm)
}

// UBPCC returns the upper bound on PCC(p,q) for object i. Constant vectors
// (Φa = 0) get an upper bound of 0, matching measure.Pearson's convention.
func (ix *CSIndex) UBPCC(i int, qf CSQuery, dot int64) float64 {
	den := ix.PhiA[i] * qf.PhiA
	if den == 0 {
		return 0
	}
	return (float64(ix.D)*ix.UBDot(i, qf, dot) - ix.PhiB[i]*qf.PhiB) / den
}

// HostDot computes the reference integer dot product on the host.
func (ix *CSIndex) HostDot(i int, qf CSQuery) int64 {
	return vec.IntDot(ix.Floor(i), qf.Floor)
}

func csFeatures(v []float64, q quant.Quantizer, floors []uint32) CSQuery {
	var sumFlr, sum, sq float64
	for i, x := range v {
		f := q.Floor(x)
		floors[i] = f
		sumFlr += float64(f)
		sum += x
		sq += x * x
	}
	d := float64(len(v))
	phiA2 := d*sq - sum*sum
	if phiA2 < 0 { // guard tiny negative round-off
		phiA2 = 0
	}
	return CSQuery{SumFlr: sumFlr, Norm: math.Sqrt(sq), PhiA: math.Sqrt(phiA2), PhiB: sum}
}

// ---------------------------------------------------------------------------
// HD on PIM (Table 4): Hamming distance over binary vectors is computed
// *exactly* on PIM via dot products,
//
//	HD(p,q) = d − p·q − p̃·q̃
//
// where p̃ is the bitwise complement. Expanding p̃·q̃ = d − Σp − Σq + p·q
// gives the equivalent single-dot-product form
//
//	HD(p,q) = Ones(p) + Ones(q) − 2·p·q
//
// which matches Eq. 3 with Φ(p) = Ones(p) precomputed offline, and needs
// only ONE crossbar payload — the form the production searcher uses (it
// is what lets 10M 1024-bit codes fit the 2GB PIM array). Binary operands
// are already non-negative integers, so no quantization slack arises and
// both forms are exact (property-tested against each other).
// ---------------------------------------------------------------------------

// HDIndex holds binary codes in the 0/1 integer form the crossbars consume,
// both direct and complemented, plus the Ones(p) Φ values.
type HDIndex struct {
	D     int
	Bits  []uint32 // N×D row-major, values in {0,1}
	Comp  []uint32 // N×D row-major complement
	Ones  []int    // popcount per code (Φ of the single-payload form)
	Codes []measure.BitVector
}

// BuildHD expands packed binary codes into crossbar-ready 0/1 vectors.
// All codes must share one length.
func BuildHD(codes []measure.BitVector) (*HDIndex, error) {
	if len(codes) == 0 {
		return &HDIndex{Codes: codes}, nil
	}
	d := codes[0].Bits
	ix := &HDIndex{
		D:     d,
		Bits:  make([]uint32, len(codes)*d),
		Comp:  make([]uint32, len(codes)*d),
		Ones:  make([]int, len(codes)),
		Codes: codes,
	}
	for i, c := range codes {
		if c.Bits != d {
			return nil, fmt.Errorf("pimbound: code %d has %d bits, want %d", i, c.Bits, d)
		}
		row := ix.Bits[i*d : (i+1)*d]
		comp := ix.Comp[i*d : (i+1)*d]
		for b := 0; b < d; b++ {
			if c.Get(b) {
				row[b] = 1
			} else {
				comp[b] = 1
			}
		}
		ix.Ones[i] = c.Ones()
	}
	return ix, nil
}

// HDQuery is the 0/1 expansion of a query code plus its complement.
type HDQuery struct {
	Bits, Comp []uint32
}

// Query expands a query code. Panics on length mismatch.
func (ix *HDIndex) Query(code measure.BitVector) HDQuery {
	if code.Bits != ix.D {
		panic(fmt.Sprintf("pimbound: query code has %d bits, index has %d", code.Bits, ix.D))
	}
	qf := HDQuery{Bits: make([]uint32, ix.D), Comp: make([]uint32, ix.D)}
	for b := 0; b < ix.D; b++ {
		if code.Get(b) {
			qf.Bits[b] = 1
		} else {
			qf.Comp[b] = 1
		}
	}
	return qf
}

// HD combines the two PIM dot products into the exact Hamming distance
// (Table 4's two-payload form).
func (ix *HDIndex) HD(dotPQ, dotComp int64) int {
	return ix.D - int(dotPQ) - int(dotComp)
}

// HD1 computes the exact Hamming distance from the single dot product and
// the precomputed Ones Φ values: Ones(p) + Ones(q) − 2·p·q.
func (ix *HDIndex) HD1(i int, qOnes int, dotPQ int64) int {
	return ix.Ones[i] + qOnes - 2*int(dotPQ)
}

// HostDots computes the reference dot products on the host.
func (ix *HDIndex) HostDots(i int, qf HDQuery) (dotPQ, dotComp int64) {
	row := ix.Bits[i*ix.D : (i+1)*ix.D]
	comp := ix.Comp[i*ix.D : (i+1)*ix.D]
	return vec.IntDot(row, qf.Bits), vec.IntDot(comp, qf.Comp)
}
