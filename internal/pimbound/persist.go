package pimbound

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Index persistence. The offline stage (§V-B) is the expensive part of
// deployment — quantizing the dataset and computing Φ — and the result is
// exactly what gets programmed onto crossbars, so production deployments
// persist it. The format is a small versioned binary container:
//
//	magic "PIMB" | version u16 | kind u16 | payload
//
// All integers are little-endian; floats are IEEE-754 bits.

const (
	persistMagic   = "PIMB"
	persistVersion = 1

	kindED  = 1
	kindFNN = 2
)

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u16(v uint16) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, v)
	}
}

func (w *writer) u32(v uint32) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, v)
	}
}

func (w *writer) u64(v uint64) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, v)
	}
}

func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) u32s(vs []uint32) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.u32(v)
	}
}

func (w *writer) f64s(vs []float64) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u16() (v uint16) {
	if r.err == nil {
		r.err = binary.Read(r.r, binary.LittleEndian, &v)
	}
	return v
}

func (r *reader) u32() (v uint32) {
	if r.err == nil {
		r.err = binary.Read(r.r, binary.LittleEndian, &v)
	}
	return v
}

func (r *reader) u64() (v uint64) {
	if r.err == nil {
		r.err = binary.Read(r.r, binary.LittleEndian, &v)
	}
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// sliceLen validates a length prefix against an upper bound so corrupted
// files cannot trigger huge allocations.
func (r *reader) sliceLen(max uint64) int {
	n := r.u64()
	if r.err == nil && n > max {
		r.err = fmt.Errorf("pimbound: corrupt length %d (cap %d)", n, max)
	}
	if r.err != nil {
		return 0
	}
	return int(n)
}

func (r *reader) u32s(max uint64) []uint32 {
	n := r.sliceLen(max)
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.u32()
	}
	return out
}

func (r *reader) f64s(max uint64) []float64 {
	n := r.sliceLen(max)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

// maxElems caps any persisted slice at 2^33 elements (64 GB of floors).
const maxElems = 1 << 33

func writeHeader(w *writer, kind uint16) {
	if w.err == nil {
		_, w.err = w.w.WriteString(persistMagic)
	}
	w.u16(persistVersion)
	w.u16(kind)
}

func readHeader(r *reader, wantKind uint16) error {
	magic := make([]byte, len(persistMagic))
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, magic)
	}
	if r.err != nil {
		return r.err
	}
	if string(magic) != persistMagic {
		return fmt.Errorf("pimbound: bad magic %q", magic)
	}
	if v := r.u16(); r.err == nil && v != persistVersion {
		return fmt.Errorf("pimbound: unsupported version %d", v)
	}
	if k := r.u16(); r.err == nil && k != wantKind {
		return fmt.Errorf("pimbound: index kind %d, want %d", k, wantKind)
	}
	return r.err
}

// SaveED serializes an LB_PIM-ED index.
func SaveED(dst io.Writer, ix *EDIndex) error {
	w := &writer{w: bufio.NewWriter(dst)}
	writeHeader(w, kindED)
	w.f64(ix.Q.Alpha)
	w.u64(uint64(ix.D))
	w.u64(uint64(ix.n))
	w.f64s(ix.Phi)
	w.u32s(ix.Floors)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// LoadED deserializes an LB_PIM-ED index.
func LoadED(src io.Reader) (*EDIndex, error) {
	r := &reader{r: bufio.NewReader(src)}
	if err := readHeader(r, kindED); err != nil {
		return nil, err
	}
	ix := &EDIndex{}
	ix.Q.Alpha = r.f64()
	ix.D = int(r.u64())
	ix.n = int(r.u64())
	ix.Phi = r.f64s(maxElems)
	ix.Floors = r.u32s(maxElems)
	if r.err != nil {
		return nil, r.err
	}
	if len(ix.Phi) != ix.n || len(ix.Floors) != ix.n*ix.D {
		return nil, fmt.Errorf("pimbound: inconsistent ED index (n=%d d=%d phi=%d floors=%d)",
			ix.n, ix.D, len(ix.Phi), len(ix.Floors))
	}
	return ix, nil
}

// SaveFNN serializes an LB_PIM-FNN index.
func SaveFNN(dst io.Writer, ix *FNNIndex) error {
	w := &writer{w: bufio.NewWriter(dst)}
	writeHeader(w, kindFNN)
	w.f64(ix.Q.Alpha)
	w.u64(uint64(ix.Segs))
	w.u64(uint64(ix.L))
	w.u64(uint64(ix.n))
	w.f64s(ix.Phi)
	w.u32s(ix.MuFloors)
	w.u32s(ix.SigmaFloors)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// LoadFNN deserializes an LB_PIM-FNN index.
func LoadFNN(src io.Reader) (*FNNIndex, error) {
	r := &reader{r: bufio.NewReader(src)}
	if err := readHeader(r, kindFNN); err != nil {
		return nil, err
	}
	ix := &FNNIndex{}
	ix.Q.Alpha = r.f64()
	ix.Segs = int(r.u64())
	ix.L = int(r.u64())
	ix.n = int(r.u64())
	ix.Phi = r.f64s(maxElems)
	ix.MuFloors = r.u32s(maxElems)
	ix.SigmaFloors = r.u32s(maxElems)
	if r.err != nil {
		return nil, r.err
	}
	if len(ix.Phi) != ix.n || len(ix.MuFloors) != ix.n*ix.Segs || len(ix.SigmaFloors) != ix.n*ix.Segs {
		return nil, fmt.Errorf("pimbound: inconsistent FNN index (n=%d segs=%d)", ix.n, ix.Segs)
	}
	return ix, nil
}
