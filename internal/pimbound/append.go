package pimbound

import (
	"fmt"

	"pimmine/internal/vec"
)

// AppendRows extends an LB_PIM-ED index with additional normalized rows,
// quantizing them with the index's α. Existing features are untouched, so
// a PIM payload reading floors through ix.Floor stays valid (the accessor
// resolves against the current storage on every call).
func (ix *EDIndex) AppendRows(m *vec.Matrix) error {
	if m.D != ix.D {
		return fmt.Errorf("pimbound: appending %d-dim rows to %d-dim index", m.D, ix.D)
	}
	for i := 0; i < m.N; i++ {
		floors := make([]uint32, ix.D)
		phi := edFeatures(m.Row(i), ix.Q, floors)
		ix.Floors = append(ix.Floors, floors...)
		ix.Phi = append(ix.Phi, phi)
		ix.n++
	}
	return nil
}
