package pimbound

import (
	"encoding/binary"
	"math"
	"testing"

	"pimmine/internal/measure"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// fuzzUnitVec reinterprets raw bytes as float64s and folds each finite
// value into [0,1), keeping at most maxD dims.
func fuzzUnitVec(raw []byte, maxD int) []float64 {
	out := make([]float64, 0, len(raw)/8)
	for len(raw) >= 8 && len(out) < maxD {
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[:8]))
		raw = raw[8:]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Abs(v)-math.Floor(math.Abs(v)))
	}
	return out
}

// FuzzLBAdmissible fuzzes the admissibility of both PIM-aware lower
// bounds: for arbitrary [0,1] vectors, any α from the tested spread and
// any segmentation granularity dividing d,
//
//	LB_PIM-ED(p,q)  ≤ ED(p,q)   (Theorem 1, within Theorem 3's slack)
//	LB_PIM-FNN(p,q) ≤ ED(p,q)   (Theorem 2)
//
// An inadmissible bound would silently drop true neighbors in the
// filter-and-refinement searchers, so this is the property the whole
// exactness story rests on.
func FuzzLBAdmissible(f *testing.F) {
	enc := func(vals ...float64) []byte {
		raw := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
		}
		return raw
	}
	f.Add(enc(0.5, 0.25, 0.75, 0.125), enc(0.1, 0.9, 0.0, 1.0), byte(3), byte(1))
	f.Add(enc(1, 1, 1, 1, 1, 1), enc(0, 0, 0, 0, 0, 0), byte(0), byte(2))
	f.Add([]byte("segment means and deviations"), []byte("floored onto the crossbars!!"), byte(2), byte(0))

	f.Fuzz(func(t *testing.T, rawP, rawQ []byte, alphaSel, segSel byte) {
		p := fuzzUnitVec(rawP, 256)
		qv := fuzzUnitVec(rawQ, 256)
		n := min(len(p), len(qv))
		if n == 0 {
			t.Skip("no finite dims")
		}
		p, qv = p[:n], qv[:n]
		alpha := []float64{2, 37, 1e3, 1e6}[alphaSel%4]
		qz, err := quant.New(alpha)
		if err != nil {
			t.Fatal(err)
		}
		m, err := vec.FromRows([][]float64{p})
		if err != nil {
			t.Fatal(err)
		}
		ed := measure.SqEuclidean(p, qv)

		// Theorem 1 + 3.
		ix := BuildED(m, qz)
		qf := ix.Query(qv)
		lb := ix.LB(0, qf, ix.HostDot(0, qf))
		if lb > ed+1e-9 {
			t.Fatalf("LB_PIM-ED inadmissible: %v > ED %v (alpha=%v d=%d)", lb, ed, alpha, n)
		}
		if gap, bound := ed-lb, qz.ErrorBound(n); gap > bound+1e-9 {
			t.Fatalf("Theorem 3 violated: gap %v > bound %v (alpha=%v d=%d)", gap, bound, alpha, n)
		}

		// Theorem 2 at a fuzz-chosen granularity: segs must divide d.
		var divs []int
		for s := 1; s <= n; s++ {
			if n%s == 0 {
				divs = append(divs, s)
			}
		}
		segs := divs[int(segSel)%len(divs)]
		fx, err := BuildFNN(m, qz, segs)
		if err != nil {
			t.Fatalf("BuildFNN(d=%d, segs=%d): %v", n, segs, err)
		}
		fq, err := fx.Query(qv)
		if err != nil {
			t.Fatal(err)
		}
		dotMu, dotSigma := fx.HostDots(0, fq)
		flb := fx.LB(0, fq, dotMu, dotSigma)
		if flb > ed+1e-9 {
			t.Fatalf("LB_PIM-FNN inadmissible: %v > ED %v (alpha=%v d=%d segs=%d)", flb, ed, alpha, n, segs)
		}
	})
}
