package pimbound

import (
	"math"
	"math/rand"
	"testing"

	"pimmine/internal/bound"
	"pimmine/internal/measure"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

func randMatrix(rng *rand.Rand, n, d int) *vec.Matrix {
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// Theorem 1 (property): LB_PIM-ED(p,q) ≤ ED(p,q) for random [0,1] vectors
// across several α scales.
func TestTheorem1LowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, alpha := range []float64{1, 10, 1e3, 1e6} {
		q, err := quant.New(alpha)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			d := 1 + rng.Intn(64)
			m := randMatrix(rng, 10, d)
			ix := BuildED(m, q)
			qv := randMatrix(rng, 1, d).Row(0)
			qf := ix.Query(qv)
			for i := 0; i < m.N; i++ {
				lb := ix.LB(i, qf, ix.HostDot(i, qf))
				ed := measure.SqEuclidean(m.Row(i), qv)
				if lb > ed+1e-9 {
					t.Fatalf("alpha=%v d=%d obj=%d: LB_PIM-ED=%v > ED=%v", alpha, d, i, lb, ed)
				}
			}
		}
	}
}

// Theorem 3 (property): the gap ED − LB_PIM-ED never exceeds 4d/α + 2d/α².
func TestTheorem3ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, alpha := range []float64{10, 1e3, 1e6} {
		q, _ := quant.New(alpha)
		for trial := 0; trial < 20; trial++ {
			d := 1 + rng.Intn(64)
			m := randMatrix(rng, 10, d)
			ix := BuildED(m, q)
			qv := randMatrix(rng, 1, d).Row(0)
			qf := ix.Query(qv)
			maxErr := q.ErrorBound(d)
			for i := 0; i < m.N; i++ {
				gap := measure.SqEuclidean(m.Row(i), qv) - ix.LB(i, qf, ix.HostDot(i, qf))
				if gap < -1e-9 || gap > maxErr+1e-9 {
					t.Fatalf("alpha=%v d=%d: gap=%v outside [0, %v]", alpha, d, gap, maxErr)
				}
			}
		}
	}
}

// Larger α gives a tighter (or equal) average bound, as §V-B promises.
func TestAlphaTightensBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randMatrix(rng, 50, 32)
	qv := randMatrix(rng, 1, 32).Row(0)
	qLo, _ := quant.New(100)
	qHi, _ := quant.New(1e6)
	ixLo, ixHi := BuildED(m, qLo), BuildED(m, qHi)
	qfLo, qfHi := ixLo.Query(qv), ixHi.Query(qv)
	var gapLo, gapHi float64
	for i := 0; i < m.N; i++ {
		ed := measure.SqEuclidean(m.Row(i), qv)
		gapLo += ed - ixLo.LB(i, qfLo, ixLo.HostDot(i, qfLo))
		gapHi += ed - ixHi.LB(i, qfHi, ixHi.HostDot(i, qfHi))
	}
	if gapHi >= gapLo {
		t.Fatalf("alpha=1e6 mean gap %v not tighter than alpha=100 gap %v", gapHi/50, gapLo/50)
	}
}

// Fig 9's worked example: p=[0.5532,0.9742,0.7375,0.6557],
// q=[0.9259,0.6644,0.8077,0.8613], α=1000 → LB ≈ 0.273 < ED ≈ 0.282.
func TestFig9WorkedExample(t *testing.T) {
	qz, _ := quant.New(1000)
	m, err := vec.FromRows([][]float64{{0.5532, 0.9742, 0.7375, 0.6557}})
	if err != nil {
		t.Fatal(err)
	}
	qv := []float64{0.9259, 0.6644, 0.8077, 0.8613}
	ix := BuildED(m, qz)
	qf := ix.Query(qv)
	ed := measure.SqEuclidean(m.Row(0), qv)
	lb := ix.LB(0, qf, ix.HostDot(0, qf))
	if math.Abs(ed-0.2819) > 5e-4 {
		t.Fatalf("ED = %v, paper's example has ≈0.282", ed)
	}
	// Hand-computing Theorem 1 on these vectors gives exactly
	// 275569.77/10⁶ = 0.2755698 (the figure's label "0.273" is a rounded
	// illustration); what matters is LB < ED with a sub-1% gap.
	if math.Abs(lb-0.2755698) > 1e-6 {
		t.Fatalf("LB_PIM-ED = %v, hand computation gives 0.2755698", lb)
	}
	if lb >= ed {
		t.Fatalf("LB %v must stay below ED %v", lb, ed)
	}
}

// Theorem 2 (property): LB_PIM-FNN(p,q) ≤ LB_FNN(p,q) ≤ ED(p,q).
func TestTheorem2Chain(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, alpha := range []float64{10, 1e3, 1e6} {
		q, _ := quant.New(alpha)
		for trial := 0; trial < 20; trial++ {
			segs := 1 + rng.Intn(8)
			l := 1 + rng.Intn(8)
			d := segs * l
			m := randMatrix(rng, 10, d)
			pimIx, err := BuildFNN(m, q, segs)
			if err != nil {
				t.Fatal(err)
			}
			hostIx, err := bound.BuildFNN(m, segs)
			if err != nil {
				t.Fatal(err)
			}
			qv := randMatrix(rng, 1, d).Row(0)
			qf, err := pimIx.Query(qv)
			if err != nil {
				t.Fatal(err)
			}
			qMu, qSigma, _ := hostIx.QueryStats(qv)
			for i := 0; i < m.N; i++ {
				dotMu, dotSigma := pimIx.HostDots(i, qf)
				pimLB := pimIx.LB(i, qf, dotMu, dotSigma)
				hostLB := hostIx.LB(i, qMu, qSigma)
				ed := measure.SqEuclidean(m.Row(i), qv)
				if pimLB > hostLB+1e-9 {
					t.Fatalf("alpha=%v segs=%d: LB_PIM-FNN=%v > LB_FNN=%v", alpha, segs, pimLB, hostLB)
				}
				if hostLB > ed+1e-9 {
					t.Fatalf("LB_FNN=%v > ED=%v", hostLB, ed)
				}
			}
		}
	}
}

func TestBuildFNNValidation(t *testing.T) {
	q, _ := quant.New(1e6)
	m := randMatrix(rand.New(rand.NewSource(25)), 4, 10)
	if _, err := BuildFNN(m, q, 3); err == nil {
		t.Fatal("BuildFNN must reject non-divisible segment counts")
	}
}

// UB_PIM-CS / UB_PIM-PCC (property): the PIM upper bounds dominate the
// exact similarities.
func TestCSAndPCCUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, alpha := range []float64{10, 1e3, 1e6} {
		q, _ := quant.New(alpha)
		for trial := 0; trial < 20; trial++ {
			d := 2 + rng.Intn(62)
			m := randMatrix(rng, 10, d)
			ix := BuildCS(m, q)
			qv := randMatrix(rng, 1, d).Row(0)
			qf := ix.Query(qv)
			for i := 0; i < m.N; i++ {
				dot := ix.HostDot(i, qf)
				if ub := ix.UBDot(i, qf, dot); ub < vec.Dot(m.Row(i), qv)-1e-9 {
					t.Fatalf("UBDot=%v < dot=%v", ub, vec.Dot(m.Row(i), qv))
				}
				if ub := ix.UBCS(i, qf, dot); ub < measure.Cosine(m.Row(i), qv)-1e-9 {
					t.Fatalf("UB_PIM-CS=%v < CS=%v", ub, measure.Cosine(m.Row(i), qv))
				}
				if ub := ix.UBPCC(i, qf, dot); ub < measure.Pearson(m.Row(i), qv)-1e-9 {
					t.Fatalf("UB_PIM-PCC=%v < PCC=%v", ub, measure.Pearson(m.Row(i), qv))
				}
			}
		}
	}
}

func TestCSZeroConventions(t *testing.T) {
	q, _ := quant.New(1e6)
	m, _ := vec.FromRows([][]float64{{0, 0, 0}, {0.5, 0.5, 0.5}})
	ix := BuildCS(m, q)
	qf := ix.Query([]float64{0.1, 0.2, 0.3})
	if got := ix.UBCS(0, qf, ix.HostDot(0, qf)); got != 0 {
		t.Fatalf("UBCS of zero vector = %v, want 0", got)
	}
	// Constant vector → Φa = 0 → PCC upper bound 0.
	if got := ix.UBPCC(1, qf, ix.HostDot(1, qf)); got != 0 {
		t.Fatalf("UBPCC of constant vector = %v, want 0", got)
	}
}

// Table 4's HD decomposition (property): d − p·q − p̃·q̃ equals the exact
// Hamming distance for random codes.
func TestHDDecompositionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(300)
		codes := make([]measure.BitVector, 8)
		for i := range codes {
			codes[i] = measure.NewBitVector(d)
			for b := 0; b < d; b++ {
				if rng.Intn(2) == 1 {
					codes[i].Set(b, true)
				}
			}
		}
		ix, err := BuildHD(codes)
		if err != nil {
			t.Fatal(err)
		}
		qc := measure.NewBitVector(d)
		for b := 0; b < d; b++ {
			if rng.Intn(2) == 1 {
				qc.Set(b, true)
			}
		}
		qf := ix.Query(qc)
		for i := range codes {
			dot, comp := ix.HostDots(i, qf)
			if got, want := ix.HD(dot, comp), measure.Hamming(codes[i], qc); got != want {
				t.Fatalf("d=%d code=%d: PIM HD=%d, exact=%d", d, i, got, want)
			}
		}
	}
}

func TestBuildHDValidation(t *testing.T) {
	a := measure.NewBitVector(8)
	b := measure.NewBitVector(16)
	if _, err := BuildHD([]measure.BitVector{a, b}); err == nil {
		t.Fatal("BuildHD must reject mixed code lengths")
	}
	empty, err := BuildHD(nil)
	if err != nil || empty.D != 0 {
		t.Fatalf("BuildHD(nil) = %v, %v", empty, err)
	}
}
