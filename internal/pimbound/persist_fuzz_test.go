package pimbound

import (
	"bytes"
	"math/rand"
	"testing"

	"pimmine/internal/quant"
)

// FuzzLoadED hardens the index loader against corrupted or hostile files:
// it must return an error or a consistent index, never panic or OOM (the
// length caps in persist.go exist exactly for this).
func FuzzLoadED(f *testing.F) {
	// Seed with a valid file and a few mutations.
	rng := rand.New(rand.NewSource(71))
	m := randMatrix(rng, 5, 9)
	q, _ := quant.New(1e4)
	ix := BuildED(m, q)
	var buf bytes.Buffer
	if err := SaveED(&buf, ix); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("PIMB"))
	f.Add([]byte{})
	mut := append([]byte{}, good...)
	mut[10] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := LoadED(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected outcome for junk
		}
		// Anything accepted must be internally consistent.
		if len(ix.Phi) != ix.N() || len(ix.Floors) != ix.N()*ix.D {
			t.Fatalf("accepted inconsistent index: n=%d d=%d phi=%d floors=%d",
				ix.N(), ix.D, len(ix.Phi), len(ix.Floors))
		}
	})
}

// FuzzLoadFNN mirrors FuzzLoadED for the FNN container.
func FuzzLoadFNN(f *testing.F) {
	rng := rand.New(rand.NewSource(72))
	m := randMatrix(rng, 4, 12)
	q, _ := quant.New(1e4)
	ix, err := BuildFNN(m, q, 3)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveFNN(&buf, ix); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:8])
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := LoadFNN(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(ix.Phi) != ix.N() || len(ix.MuFloors) != ix.N()*ix.Segs {
			t.Fatalf("accepted inconsistent FNN index")
		}
	})
}
