package pimbound

import (
	"bytes"
	"math/rand"
	"testing"

	"pimmine/internal/quant"
)

func TestEDRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := randMatrix(rng, 30, 17)
	q, _ := quant.New(1e6)
	ix := BuildED(m, q)

	var buf bytes.Buffer
	if err := SaveED(&buf, ix); err != nil {
		t.Fatal(err)
	}
	got, err := LoadED(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.D != ix.D || got.N() != ix.N() || got.Q.Alpha != ix.Q.Alpha {
		t.Fatalf("shape mismatch: %+v vs %+v", got, ix)
	}
	qv := randMatrix(rng, 1, 17).Row(0)
	qf1 := ix.Query(qv)
	qf2 := got.Query(qv)
	for i := 0; i < ix.N(); i++ {
		if ix.LB(i, qf1, ix.HostDot(i, qf1)) != got.LB(i, qf2, got.HostDot(i, qf2)) {
			t.Fatalf("bound diverges after round trip at object %d", i)
		}
	}
}

func TestFNNRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	m := randMatrix(rng, 20, 24)
	q, _ := quant.New(1e4)
	ix, err := BuildFNN(m, q, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveFNN(&buf, ix); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFNN(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Segs != ix.Segs || got.L != ix.L || got.N() != ix.N() {
		t.Fatalf("shape mismatch")
	}
	qv := randMatrix(rng, 1, 24).Row(0)
	qf1, _ := ix.Query(qv)
	qf2, _ := got.Query(qv)
	for i := 0; i < ix.N(); i++ {
		dm1, ds1 := ix.HostDots(i, qf1)
		dm2, ds2 := got.HostDots(i, qf2)
		if ix.LB(i, qf1, dm1, ds1) != got.LB(i, qf2, dm2, ds2) {
			t.Fatalf("bound diverges after round trip at object %d", i)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	m := randMatrix(rng, 4, 8)
	q, _ := quant.New(100)
	ix := BuildED(m, q)
	var buf bytes.Buffer
	if err := SaveED(&buf, ix); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := LoadED(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Wrong kind: an FNN file loaded as ED.
	fnn, err := BuildFNN(m, q, 4)
	if err != nil {
		t.Fatal(err)
	}
	var fbuf bytes.Buffer
	if err := SaveFNN(&fbuf, fnn); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadED(&fbuf); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	// Truncated payload.
	if _, err := LoadED(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}
	// Insane length prefix (would allocate 64GB without the cap).
	evil := append([]byte{}, good[:16]...) // header + alpha
	evil = append(evil, make([]byte, 16)...)
	for i := 16; i < 32; i++ {
		evil[i] = 0xFF
	}
	if _, err := LoadED(bytes.NewReader(evil)); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
	// Version bump.
	vbad := append([]byte{}, good...)
	vbad[4] = 0xFF
	if _, err := LoadED(bytes.NewReader(vbad)); err == nil {
		t.Fatal("future version accepted")
	}
}
