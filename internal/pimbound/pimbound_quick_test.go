package pimbound

import (
	"math"
	"testing"
	"testing/quick"

	"pimmine/internal/measure"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

// clampUnitVec maps arbitrary fuzz floats into [0,1].
func clampUnitVec(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Abs(v)-math.Floor(math.Abs(v)))
	}
	return out
}

// Property (quick-driven Theorem 1 + 3): for arbitrary [0,1] vectors and
// a spread of α values, 0 ≤ ED − LB_PIM-ED ≤ 4d/α + 2d/α².
func TestTheorem1And3Quick(t *testing.T) {
	f := func(rawP, rawQ []float64, alphaSel uint8) bool {
		p := clampUnitVec(rawP)
		qv := clampUnitVec(rawQ)
		n := len(p)
		if len(qv) < n {
			n = len(qv)
		}
		if n == 0 {
			return true
		}
		p, qv = p[:n], qv[:n]
		alpha := []float64{2, 37, 1e3, 1e6}[alphaSel%4]
		qz, err := quant.New(alpha)
		if err != nil {
			return false
		}
		m, err := vec.FromRows([][]float64{p})
		if err != nil {
			return false
		}
		ix := BuildED(m, qz)
		qf := ix.Query(qv)
		lb := ix.LB(0, qf, ix.HostDot(0, qf))
		ed := measure.SqEuclidean(p, qv)
		gap := ed - lb
		return gap >= -1e-9 && gap <= qz.ErrorBound(n)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: the HD decomposition identities agree for arbitrary codes —
// Table 4's two-payload form, the single-payload Ones form, and the
// direct XOR+popcount scan.
func TestHDIdentitiesQuick(t *testing.T) {
	f := func(rawP, rawQ []byte, bitsRaw uint8) bool {
		bits := int(bitsRaw)%200 + 1
		mk := func(raw []byte) measure.BitVector {
			b := measure.NewBitVector(bits)
			for i := 0; i < bits; i++ {
				if i < len(raw)*8 && raw[i/8]>>(i%8)&1 == 1 {
					b.Set(i, true)
				}
			}
			return b
		}
		p, q := mk(rawP), mk(rawQ)
		ix, err := BuildHD([]measure.BitVector{p})
		if err != nil {
			return false
		}
		qf := ix.Query(q)
		dot, comp := ix.HostDots(0, qf)
		want := measure.Hamming(p, q)
		return ix.HD(dot, comp) == want && ix.HD1(0, q.Ones(), dot) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: CS and PCC upper bounds dominate the exact values for
// arbitrary [0,1] vectors.
func TestSimilarityUpperBoundsQuick(t *testing.T) {
	f := func(rawP, rawQ []float64) bool {
		p := clampUnitVec(rawP)
		qv := clampUnitVec(rawQ)
		n := len(p)
		if len(qv) < n {
			n = len(qv)
		}
		if n < 2 {
			return true
		}
		p, qv = p[:n], qv[:n]
		qz, err := quant.New(1e6)
		if err != nil {
			return false
		}
		m, err := vec.FromRows([][]float64{p})
		if err != nil {
			return false
		}
		ix := BuildCS(m, qz)
		qf := ix.Query(qv)
		dot := ix.HostDot(0, qf)
		return ix.UBCS(0, qf, dot) >= measure.Cosine(p, qv)-1e-9 &&
			ix.UBPCC(0, qf, dot) >= measure.Pearson(p, qv)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
