package join

import (
	"math"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

func testRelations(t *testing.T, nr, ns, d int) (*vec.Matrix, *vec.Matrix) {
	t.Helper()
	prof := dataset.Profile{Name: "t", FullN: ns, D: d, Clusters: 6, Correlation: 0.75, Spread: 0.1}
	ds := dataset.Generate(prof, ns, 13)
	return ds.Queries(nr, 14), ds.X
}

func newPIMJoiner(t *testing.T, s *vec.Matrix) *Joiner {
	t.Helper()
	eng, err := pim.NewEngine(arch.Default(), pim.ModeExact)
	if err != nil {
		t.Fatal(err)
	}
	q, err := quant.New(quant.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJoinerPIM(eng, s, q, s.N)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestKNNJoinMatchesNestedLoop(t *testing.T) {
	r, s := testRelations(t, 20, 300, 32)
	host := NewJoiner(s)
	want, err := host.KNN(r, 5, false, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	// Reference: nested loop.
	for i := 0; i < r.N; i++ {
		top := vec.NewTopK(5)
		for sj := 0; sj < s.N; sj++ {
			top.Push(sj, measure.SqEuclidean(r.Row(i), s.Row(sj)))
		}
		ref := top.Results()
		for pos := range ref {
			if want[i][pos].Dist != ref[pos].Dist {
				t.Fatalf("host join row %d pos %d: %v != %v", i, pos, want[i][pos], ref[pos])
			}
		}
	}
	pimJ := newPIMJoiner(t, s)
	got, err := pimJ.KNN(r, 5, false, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for pos := range want[i] {
			if got[i][pos].Dist != want[i][pos].Dist {
				t.Fatalf("PIM join row %d pos %d: %v != %v", i, pos, got[i][pos], want[i][pos])
			}
		}
	}
}

func TestSelfJoinExcludesIdentity(t *testing.T) {
	_, s := testRelations(t, 1, 100, 16)
	host := NewJoiner(s)
	res, err := host.KNN(s, 3, true, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	for i, nn := range res {
		for _, nb := range nn {
			if nb.Index == i {
				t.Fatalf("self-join row %d contains itself", i)
			}
		}
		if len(nn) != 3 {
			t.Fatalf("row %d has %d neighbors", i, len(nn))
		}
	}
	// Self-join with a different outer relation must fail.
	r, _ := testRelations(t, 5, 50, 16)
	if _, err := host.KNN(r, 3, true, arch.NewMeter()); err == nil {
		t.Fatal("self-join with foreign outer relation must be rejected")
	}
}

func TestEpsJoinMatchesNestedLoop(t *testing.T) {
	r, s := testRelations(t, 25, 250, 24)
	eps := 0.35
	host := NewJoiner(s)
	want, err := host.Eps(r, eps, false, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	// Reference.
	var ref []Pair
	for i := 0; i < r.N; i++ {
		for sj := 0; sj < s.N; sj++ {
			if d := measure.SqEuclidean(r.Row(i), s.Row(sj)); d <= eps*eps {
				ref = append(ref, Pair{R: i, S: sj, DistSq: d})
			}
		}
	}
	if len(ref) == 0 {
		t.Fatal("test eps selects nothing; widen it")
	}
	assertSamePairs(t, "host", want, ref)
	got, err := newPIMJoiner(t, s).Eps(r, eps, false, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "PIM", got, ref)
}

func TestEpsSelfJoinOrdering(t *testing.T) {
	_, s := testRelations(t, 1, 120, 16)
	pairs, err := NewJoiner(s).Eps(s, 0.3, true, arch.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.R >= p.S {
			t.Fatalf("self-join emitted unordered pair %+v", p)
		}
	}
}

func TestPIMJoinPrunes(t *testing.T) {
	r, s := testRelations(t, 30, 400, 32)
	mHost, mPIM := arch.NewMeter(), arch.NewMeter()
	if _, err := NewJoiner(s).KNN(r, 5, false, mHost); err != nil {
		t.Fatal(err)
	}
	if _, err := newPIMJoiner(t, s).KNN(r, 5, false, mPIM); err != nil {
		t.Fatal(err)
	}
	if mPIM.Get(arch.FuncED).Calls*2 >= mHost.Get(arch.FuncED).Calls {
		t.Fatalf("PIM join computed %d exact distances vs host %d — expected >2x pruning",
			mPIM.Get(arch.FuncED).Calls, mHost.Get(arch.FuncED).Calls)
	}
}

func TestJoinValidation(t *testing.T) {
	r, s := testRelations(t, 5, 50, 16)
	j := NewJoiner(s)
	if _, err := j.KNN(r, 0, false, arch.NewMeter()); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := j.Eps(r, 0, false, arch.NewMeter()); err == nil {
		t.Fatal("eps=0 must be rejected")
	}
	bad := vec.NewMatrix(3, 8)
	if _, err := j.KNN(bad, 2, false, arch.NewMeter()); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
	if _, err := j.KNN(s, s.N, true, arch.NewMeter()); err == nil {
		t.Fatal("k >= N self-join must be rejected")
	}
}

func assertSamePairs(t *testing.T, name string, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i].R != want[i].R || got[i].S != want[i].S ||
			math.Abs(got[i].DistSq-want[i].DistSq) > 1e-12 {
			t.Fatalf("%s: pair %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}
