package join

import (
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/vec"
)

// TestKNNRowZeroAllocs pins the per-row refine primitive allocation-free
// once the Joiner's scratch is warm, on both the host and the PIM path.
func TestKNNRowZeroAllocs(t *testing.T) {
	const k = 5
	r, s := testRelations(t, 8, 200, 32)
	for _, tc := range []struct {
		name string
		j    *Joiner
	}{
		{"host", NewJoiner(s)},
		{"pim", newPIMJoiner(t, s)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			meter := arch.NewMeter()
			dst := make([]vec.Neighbor, 0, k)
			var err error
			for i := 0; i < 3; i++ { // warm scratch + meter buckets
				if dst, err = tc.j.KNNRow(r.Row(i), k, -1, meter, dst[:0]); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				dst, err = tc.j.KNNRow(r.Row(0), k, -1, meter, dst[:0])
			})
			if err != nil {
				t.Fatal(err)
			}
			if allocs != 0 {
				t.Fatalf("%s: steady-state KNNRow allocated %.1f times per row, want 0", tc.name, allocs)
			}
			if len(dst) != k {
				t.Fatalf("%s: returned %d neighbors, want %d", tc.name, len(dst), k)
			}
		})
	}
}

// TestKNNRowMatchesKNN pins the per-row primitive identical to the batch
// join: same neighbors and same meter activity, row by row.
func TestKNNRowMatchesKNN(t *testing.T) {
	const k = 4
	r, s := testRelations(t, 6, 150, 32)
	jBatch := newPIMJoiner(t, s)
	m1 := arch.NewMeter()
	want, err := jBatch.KNN(r, k, false, m1)
	if err != nil {
		t.Fatal(err)
	}
	m2 := arch.NewMeter()
	var dst []vec.Neighbor
	for i := 0; i < r.N; i++ {
		dst, err = jBatch.KNNRow(r.Row(i), k, -1, m2, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		if len(dst) != len(want[i]) {
			t.Fatalf("row %d: %d neighbors, KNN gave %d", i, len(dst), len(want[i]))
		}
		for p := range dst {
			if dst[p] != want[i][p] {
				t.Fatalf("row %d pos %d: %+v, KNN gave %+v", i, p, dst[p], want[i][p])
			}
		}
	}
	for _, fn := range m1.Functions() {
		if m1.Get(fn) != m2.Get(fn) {
			t.Fatalf("meter %q diverged: %+v vs %+v", fn, m1.Get(fn), m2.Get(fn))
		}
	}
}
