// Package join implements similarity joins between two datasets — the
// database-flavored face of the paper's similarity primitive:
//
//   - kNN join: for every object of R, its k nearest neighbors in S;
//   - ε-join (distance range join): every pair (r, s) with ED(r,s) ≤ ε².
//
// The PIM variants program S's quantized floors once (S is the inner,
// indexed relation) and run one batched dot-product pass per outer row,
// pruning with LB_PIM-ED exactly as the paper's kNN filter does. Results
// are exact and integration-tested against nested-loop joins.
package join

import (
	"fmt"

	"pimmine/internal/arch"
	"pimmine/internal/measure"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/quant"
	"pimmine/internal/vec"
)

const operandBytes = 4

// Joiner joins an outer relation against a fixed inner relation S. With
// a non-nil PIM index it runs the PIM-optimized path.
//
// A Joiner owns per-row scratch (top-k collector, query floors, dot
// buffer) reused across outer rows, so the refine loops of KNN/Eps and
// the public KNNRow primitive perform zero heap allocations per row once
// warmed up. The scratch makes a Joiner non-reentrant: one Joiner serves
// one goroutine.
type Joiner struct {
	S *vec.Matrix

	eng  *pim.Engine
	ix   *pimbound.EDIndex
	pay  *pim.Payload
	dots []int64

	top    *vec.TopK
	qFloor []uint32 // query floor scratch (PIM path)
}

// NewJoiner builds the host-only joiner over the inner relation.
func NewJoiner(s *vec.Matrix) *Joiner { return &Joiner{S: s} }

// NewJoinerPIM quantizes the inner relation and programs it onto the
// array.
func NewJoinerPIM(eng *pim.Engine, s *vec.Matrix, q quant.Quantizer, capacityN int) (*Joiner, error) {
	if !eng.Model().Fits(capacityN, s.D, 1) {
		return nil, fmt.Errorf("join: %d-dim floors for N=%d exceed PIM capacity", s.D, capacityN)
	}
	ix := pimbound.BuildED(s, q)
	pay, err := eng.Program("join/inner", s.N, s.D, 1, ix.Floor)
	if err != nil {
		return nil, err
	}
	return &Joiner{S: s, eng: eng, ix: ix, pay: pay, qFloor: make([]uint32, s.D)}, nil
}

// Name reports which path the joiner runs.
func (j *Joiner) Name() string {
	if j.ix != nil {
		return "Joiner-PIM"
	}
	return "Joiner"
}

// prepare runs the PIM pass for one outer row (PIM path only).
func (j *Joiner) prepare(r []float64, meter *arch.Meter) (pimbound.EDQuery, error) {
	qf := j.ix.QueryInto(r, j.qFloor)
	var err error
	j.dots, err = j.eng.QueryAll(meter, "LBPIM-ED", j.pay, qf.Floor, j.dots)
	return qf, err
}

// KNNRow computes the k nearest inner rows of one outer row, appending
// them to dst (ascending squared distance) and returning the extended
// slice. exclude names an inner row to skip (the self-join identity
// pair), or is negative for none. It is the per-row refine primitive KNN
// batches over; a warmed-up Joiner performs zero heap allocations per
// call when dst has capacity for k neighbors.
func (j *Joiner) KNNRow(row []float64, k, exclude int, meter *arch.Meter, dst []vec.Neighbor) ([]vec.Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("join: k must be >= 1, got %d", k)
	}
	if len(row) != j.S.D {
		return nil, fmt.Errorf("join: outer d=%d, inner d=%d", len(row), j.S.D)
	}
	var qf pimbound.EDQuery
	if j.ix != nil {
		var err error
		if qf, err = j.prepare(row, meter); err != nil {
			return nil, err
		}
	}
	if j.top == nil {
		j.top = vec.NewTopK(k)
	} else {
		j.top.Reset(k)
	}
	var exact, consults int64
	for s := 0; s < j.S.N; s++ {
		if s == exclude {
			continue
		}
		if j.ix != nil {
			consults++
			if j.ix.LB(s, qf, j.dots[s]) > j.top.Threshold() {
				continue
			}
		}
		exact++
		j.top.Push(s, measure.SqEuclidean(row, j.S.Row(s)))
	}
	j.recordCosts(meter, exact, consults)
	return j.top.AppendResults(dst), nil
}

// KNN computes the kNN join R ⋉ₖ S: result[i] holds the k nearest inner
// rows of outer row i (squared distances, ascending). When selfJoin is
// true, R must be S itself and the identity pair (i,i) is excluded.
func (j *Joiner) KNN(r *vec.Matrix, k int, selfJoin bool, meter *arch.Meter) ([][]vec.Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("join: k must be >= 1, got %d", k)
	}
	if r.D != j.S.D {
		return nil, fmt.Errorf("join: outer d=%d, inner d=%d", r.D, j.S.D)
	}
	minInner := k
	if selfJoin {
		if r != j.S {
			return nil, fmt.Errorf("join: self-join requires the outer relation to be the inner one")
		}
		minInner = k + 1
	}
	if j.S.N < minInner {
		return nil, fmt.Errorf("join: inner relation has %d rows, need %d", j.S.N, minInner)
	}
	out := make([][]vec.Neighbor, r.N)
	// One flat neighbor arena for the whole join: row i appends into the
	// disjoint stride-k region flat[i*k : (i+1)*k], so the per-row refine
	// (KNNRow) allocates nothing.
	flat := make([]vec.Neighbor, r.N*k)
	for i := 0; i < r.N; i++ {
		exclude := -1
		if selfJoin {
			exclude = i
		}
		nbs, err := j.KNNRow(r.Row(i), k, exclude, meter, flat[i*k:i*k:(i+1)*k])
		if err != nil {
			return nil, err
		}
		out[i] = nbs
	}
	return out, nil
}

// Pair is one ε-join result.
type Pair struct {
	R, S int
	// DistSq is the squared Euclidean distance.
	DistSq float64
}

// Eps computes the range join R ⋈_ε S: all pairs with ED(r,s) ≤ ε (true
// Euclidean). Pairs come out in (R, S) lexicographic order. When selfJoin
// is true, only pairs with r < s are emitted.
func (j *Joiner) Eps(r *vec.Matrix, eps float64, selfJoin bool, meter *arch.Meter) ([]Pair, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("join: eps must be positive, got %v", eps)
	}
	if r.D != j.S.D {
		return nil, fmt.Errorf("join: outer d=%d, inner d=%d", r.D, j.S.D)
	}
	if selfJoin && r != j.S {
		return nil, fmt.Errorf("join: self-join requires the outer relation to be the inner one")
	}
	eps2 := eps * eps
	var out []Pair
	var exact, consults int64
	for i := 0; i < r.N; i++ {
		row := r.Row(i)
		var qf pimbound.EDQuery
		if j.ix != nil {
			var err error
			if qf, err = j.prepare(row, meter); err != nil {
				return nil, err
			}
		}
		start := 0
		if selfJoin {
			start = i + 1
		}
		for s := start; s < j.S.N; s++ {
			if j.ix != nil {
				consults++
				if j.ix.LB(s, qf, j.dots[s]) > eps2 {
					continue
				}
			}
			exact++
			if d := measure.SqEuclidean(row, j.S.Row(s)); d <= eps2 {
				out = append(out, Pair{R: i, S: s, DistSq: d})
			}
		}
	}
	j.recordCosts(meter, exact, consults)
	return out, nil
}

func (j *Joiner) recordCosts(meter *arch.Meter, exact, consults int64) {
	d := int64(j.S.D)
	ed := meter.C(arch.FuncED)
	ed.Ops += exact * 3 * d
	ed.SeqBytes += exact * d * operandBytes
	ed.Branches += exact
	ed.Calls += exact
	if consults > 0 {
		c := meter.C("LBPIM-ED")
		c.Ops += consults * 8
		c.SeqBytes += consults * 2 * operandBytes
		c.Branches += consults
		c.Calls += consults
	}
}
