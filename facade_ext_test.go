package pimmine_test

import (
	"fmt"
	"log"
	"math"
	"testing"

	"pimmine"
)

// The extension tasks are reachable and exact through the facade.
func TestFacadeExtensions(t *testing.T) {
	prof, err := pimmine.DatasetByName("Year")
	if err != nil {
		t.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 300, 19)
	q, err := pimmine.NewQuantizer(pimmine.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}

	// Outliers.
	eng1, _ := pimmine.NewEngine(pimmine.DefaultConfig())
	det, err := pimmine.NewOutlierDetectorPIM(eng1, ds.X, q, ds.X.N)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pimmine.NewOutlierDetector(ds.X).TopN(3, 5, pimmine.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	got, err := det.TopN(3, 5, pimmine.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("outlier facade mismatch at %d", i)
		}
	}

	// DB outliers too.
	dbHost, err := pimmine.NewOutlierDetector(ds.X).DB(0.8, 0.02, pimmine.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	dbPIM, err := det.DB(0.8, 0.02, pimmine.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	if len(dbHost) != len(dbPIM) {
		t.Fatalf("DB outlier counts differ: %d vs %d", len(dbHost), len(dbPIM))
	}

	// Motifs and discords over a small series.
	series := make([]float64, 600)
	for i := range series {
		series[i] = math.Sin(float64(i) / 5)
	}
	windows, _, err := pimmine.MotifWindows(series, 24)
	if err != nil {
		t.Fatal(err)
	}
	eng2, _ := pimmine.NewEngine(pimmine.DefaultConfig())
	mf, err := pimmine.NewMotifFinderPIM(eng2, windows, q, windows.N)
	if err != nil {
		t.Fatal(err)
	}
	hostM, err := pimmine.NewMotifFinder(windows).Top(pimmine.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	pimM, err := mf.Top(pimmine.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	if hostM != pimM {
		t.Fatalf("motif facade mismatch: %+v vs %+v", pimM, hostM)
	}
	if _, err := mf.Discord(pimmine.NewMeter()); err != nil {
		t.Fatal(err)
	}
	if _, err := mf.TopK(2, pimmine.NewMeter()); err != nil {
		t.Fatal(err)
	}

	// Joins.
	outer := ds.Queries(10, 20)
	eng3, _ := pimmine.NewEngine(pimmine.DefaultConfig())
	jn, err := pimmine.NewJoinerPIM(eng3, ds.X, q, ds.X.N)
	if err != nil {
		t.Fatal(err)
	}
	wantJ, err := pimmine.NewJoiner(ds.X).KNN(outer, 3, false, pimmine.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	gotJ, err := jn.KNN(outer, 3, false, pimmine.NewMeter())
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantJ {
		for p := range wantJ[i] {
			if wantJ[i][p].Dist != gotJ[i][p].Dist {
				t.Fatalf("join facade mismatch at row %d", i)
			}
		}
	}
	if _, err := jn.Eps(outer, 0.9, false, pimmine.NewMeter()); err != nil {
		t.Fatal(err)
	}

	// Classifier.
	cls, err := pimmine.NewKNNClassifier(pimmine.NewExactKNN(ds.X), ds.Labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	if l, v := cls.Classify(outer.Row(0), pimmine.NewMeter()); l < 0 || v < 1 {
		t.Fatalf("classifier returned (%d, %d)", l, v)
	}

	// Batch search.
	res, err := pimmine.SearchKNNBatch(func() (pimmine.KNNSearcher, error) {
		return pimmine.NewExactKNN(ds.X), nil
	}, outer, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != outer.N {
		t.Fatalf("batch returned %d rows", len(res.Neighbors))
	}

	// Hamerly through the framework.
	fw, err := pimmine.NewFramework(pimmine.DefaultConfig(), pimmine.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := fw.AccelerateKMeans(ds.X, pimmine.Hamerly, pimmine.KMeansOptions{K: 6, MaxIters: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	initial, _ := pimmine.KMeansInitCenters(ds.X, 6, 2)
	lloyd := pimmine.NewLloyd(ds.X).Run(initial, 15, pimmine.NewMeter())
	ham := acc.PIM.Run(initial, 15, pimmine.NewMeter())
	for i := range lloyd.Assign {
		if lloyd.Assign[i] != ham.Assign[i] {
			t.Fatalf("Hamerly-PIM diverges from Lloyd at %d", i)
		}
	}
}

// ExampleNewFramework demonstrates the full accelerate-and-search flow.
func ExampleNewFramework() {
	prof, _ := pimmine.DatasetByName("MSD")
	ds := pimmine.GenerateDataset(prof, 800, 42)
	fw, err := pimmine.NewFramework(pimmine.DefaultConfig(), pimmine.DefaultAlpha)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := fw.AccelerateKNN(ds.X, pimmine.KNNOptions{
		CapacityN: prof.FullN, // paper-scale Theorem 4 sizing
		K:         10,
		Pilot:     ds.Queries(3, 43),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compressed dimensionality:", acc.S)
	fmt.Println("plan:", acc.Plan.String())
	// Output:
	// compressed dimensionality: 105
	// plan: LBPIM-FNN-105 → ED
}

// ExampleQuantizer shows Theorem 3's error bound shrinking with α.
func ExampleQuantizer() {
	for _, alpha := range []float64{1e3, 1e6} {
		q, _ := pimmine.NewQuantizer(alpha)
		fmt.Printf("alpha=%.0e error bound (d=420): %.2e\n", alpha, pimmine.ErrorBound(q, 420))
	}
	// Output:
	// alpha=1e+03 error bound (d=420): 1.68e+00
	// alpha=1e+06 error bound (d=420): 1.68e-03
}
