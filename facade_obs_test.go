package pimmine_test

import (
	"context"
	"strings"
	"testing"

	"pimmine"
)

// TestFacadeObservedEngine drives the observability surface end to end
// through the public facade: observed serving, scraped metrics, and a
// rendered trace.
func TestFacadeObservedEngine(t *testing.T) {
	prof, err := pimmine.DatasetByName("MSD")
	if err != nil {
		t.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 400, 11)
	queries := ds.Queries(6, 12)
	fw, err := pimmine.NewFramework(pimmine.DefaultConfig(), pimmine.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}

	o := pimmine.NewObserver(pimmine.ObserverConfig{SampleRate: 1})
	eng, err := pimmine.NewObservedEngine(ds.X, pimmine.QueryEngineOptions{
		Shards:    2,
		Variant:   pimmine.ServeFNNPIM,
		Framework: fw,
		CapacityN: prof.FullN,
	}, o)
	if err != nil {
		t.Fatal(err)
	}

	exact := pimmine.NewExactKNN(ds.X)
	for qi := 0; qi < queries.N; qi++ {
		res, err := eng.Search(context.Background(), queries.Row(qi), 5)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.Search(queries.Row(qi), 5, pimmine.NewMeter())
		for i := range want {
			if res.Neighbors[i] != want[i] {
				t.Fatalf("observed engine inexact: query %d neighbor %d", qi, i)
			}
		}
	}

	var b strings.Builder
	if err := o.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	metrics := b.String()
	for _, want := range []string{
		"pim_serve_queries_total 6",
		`pim_serve_shard_queries_total{shard="0"} 6`,
		"pim_serve_query_latency_seconds_count 6",
		"pim_faults_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("facade metrics missing %q", want)
		}
	}

	traces := o.Tracer().Recent(0)
	if len(traces) != queries.N {
		t.Fatalf("sampled %d traces, want %d", len(traces), queries.N)
	}
	tree := traces[0].Render()
	for _, want := range []string{"engine.search", "shard 0", "pim-dot", "bound-eval", "refine"} {
		if !strings.Contains(tree, want) {
			t.Errorf("facade trace missing %q:\n%s", want, tree)
		}
	}

	// A nil observer must serve unobserved without blowing up.
	plain, err := pimmine.NewObservedEngine(ds.X, pimmine.QueryEngineOptions{
		Shards:    2,
		Variant:   pimmine.ServeFNNPIM,
		Framework: fw,
		CapacityN: prof.FullN,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Search(context.Background(), queries.Row(0), 5); err != nil {
		t.Fatal(err)
	}
}
