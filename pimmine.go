// Package pimmine accelerates similarity-based mining tasks (kNN
// classification, k-means clustering) on high-dimensional data with a
// simulated ReRAM processing-in-memory (PIM) substrate, reproducing
// Wang, Yiu & Shao, "Accelerating Similarity-based Mining Tasks on
// High-dimensional Data by Processing-in-memory" (ICDE 2021).
//
// The package is a facade over the focused internal packages; the types
// exposed here cover the full user journey:
//
//	cfg  := pimmine.DefaultConfig()            // Table 5 hardware model
//	fw,_ := pimmine.NewFramework(cfg, 1e6)     // §III-B framework, α=10⁶
//	ds   := pimmine.GenerateDataset(prof, n, seed)
//	acc,_ := fw.AccelerateKNN(ds.X, pimmine.KNNOptions{Pilot: ...})
//	nn   := acc.Optimized.Search(q, 10, pimmine.NewMeter())
//
// Everything runs for real — results are exact, verified against plain
// linear scans — while activity meters feed the architecture timing model
// that reproduces the paper's evaluation (see bench_test.go and
// EXPERIMENTS.md).
package pimmine

import (
	"pimmine/internal/arch"
	"pimmine/internal/cluster"
	"pimmine/internal/core"
	"pimmine/internal/dataset"
	"pimmine/internal/dbscan"
	"pimmine/internal/delta"
	"pimmine/internal/fault"
	"pimmine/internal/join"
	"pimmine/internal/kmeans"
	"pimmine/internal/knn"
	"pimmine/internal/lsh"
	"pimmine/internal/measure"
	"pimmine/internal/motif"
	"pimmine/internal/netserve"
	"pimmine/internal/obs"
	"pimmine/internal/outlier"
	"pimmine/internal/pim"
	"pimmine/internal/plan"
	"pimmine/internal/profile"
	"pimmine/internal/quant"
	"pimmine/internal/resilience"
	"pimmine/internal/route"
	"pimmine/internal/serve"
	"pimmine/internal/standing"
	"pimmine/internal/vec"
	"pimmine/internal/wal"
)

// Hardware model and activity accounting.
type (
	// Config is the Table 5 hardware description (host + ReRAM PIM).
	Config = arch.Config
	// Meter accumulates modeled activity per function.
	Meter = arch.Meter
	// Breakdown is Eq. 1's time decomposition plus the PIM component.
	Breakdown = arch.Breakdown
)

// Data containers.
type (
	// Matrix is a dense row-major dataset (one row per object).
	Matrix = vec.Matrix
	// Neighbor is one kNN result.
	Neighbor = vec.Neighbor
	// BitVector is a packed binary code for Hamming workloads.
	BitVector = measure.BitVector
	// DatasetProfile describes one synthetic Table 6 dataset family.
	DatasetProfile = dataset.Profile
	// Dataset is a generated dataset with labels and query sampling.
	Dataset = dataset.Dataset
)

// The framework (§III-B) and its outputs.
type (
	// Framework wires profiling, Theorem 4 sizing, PIM-aware bounds and
	// plan optimization for a given hardware model.
	Framework = core.Framework
	// KNNOptions configures Framework.AccelerateKNN.
	KNNOptions = core.KNNOptions
	// KNNAcceleration is AccelerateKNN's result bundle.
	KNNAcceleration = core.KNNAcceleration
	// KMeansOptions configures Framework.AccelerateKMeans.
	KMeansOptions = core.KMeansOptions
	// KMeansAcceleration is AccelerateKMeans's result bundle.
	KMeansAcceleration = core.KMeansAcceleration
	// KMeansVariant names a base k-means algorithm.
	KMeansVariant = core.KMeansVariant
	// Profile is a §IV profiling report.
	Profile = profile.Report
	// Plan is a §V-D execution plan.
	Plan = plan.Plan
	// Quantizer is the §V-B float→integer pipeline.
	Quantizer = quant.Quantizer
	// Engine is the PIM array (programming + batched dot products).
	Engine = pim.Engine
)

// The k-means variants accepted by AccelerateKMeans (the paper's four
// plus Hamerly).
const (
	Standard = core.VariantStandard
	Elkan    = core.VariantElkan
	Hamerly  = core.VariantHamerly
	Drake    = core.VariantDrake
	Yinyang  = core.VariantYinyang
)

// DefaultAlpha is the paper's quantization scaling factor (10⁶).
const DefaultAlpha = quant.DefaultAlpha

// DefaultConfig returns the paper's Table 5 hardware configuration.
func DefaultConfig() Config { return arch.Default() }

// NewMeter returns an empty activity meter.
func NewMeter() *Meter { return arch.NewMeter() }

// NewFramework builds the §III-B framework over a hardware model with
// scaling factor alpha (use DefaultAlpha for the paper's setting).
func NewFramework(cfg Config, alpha float64) (*Framework, error) {
	return core.New(cfg, alpha, pim.ModeExact)
}

// NewSimulatedFramework is NewFramework with every PIM dot product routed
// through the bit-sliced functional crossbar simulator — slow, intended
// for demos and verification.
func NewSimulatedFramework(cfg Config, alpha float64) (*Framework, error) {
	return core.New(cfg, alpha, pim.ModeSimulate)
}

// FaultModel configures injected PIM hardware faults (internal/fault):
// stuck-at-0/1 cells, bounded conductance drift, transient read noise,
// and whole-crossbar failure, all deterministic per seed.
type FaultModel = fault.Model

// NewFaultyFramework is NewFramework with every PIM array suffering the
// given injected faults. Mining results remain bit-identical to the
// fault-free (and host-exact) path: cell-level errors are absorbed by
// widening the PIM bounds with the injected error envelope, and vectors
// behind dead crossbars are never pruned and refined exactly on the host
// (the serve layer degrades whole shards with dead crossbars to host
// scans). Fault activity is reported through Meter counters (PIMFaults,
// PIMRecovered) and Engine.FaultCounts.
func NewFaultyFramework(cfg Config, alpha float64, model FaultModel) (*Framework, error) {
	return core.NewFaulty(cfg, alpha, pim.ModeExact, &model)
}

// DatasetProfiles lists the eight Table 6 synthetic dataset families.
func DatasetProfiles() []DatasetProfile { return dataset.Profiles }

// DatasetByName returns a Table 6 profile by name (e.g. "MSD").
func DatasetByName(name string) (DatasetProfile, error) { return dataset.ByName(name) }

// GenerateDataset draws n rows from a profile's mixture (seeded,
// deterministic) normalized into [0,1].
func GenerateDataset(p DatasetProfile, n int, seed int64) *Dataset {
	return dataset.Generate(p, n, seed)
}

// NewEngine builds a PIM array for direct (non-framework) use.
func NewEngine(cfg Config) (*Engine, error) { return pim.NewEngine(cfg, pim.ModeExact) }

// NewQuantizer builds the §V-B quantizer.
func NewQuantizer(alpha float64) (Quantizer, error) { return quant.New(alpha) }

// NewProfile profiles a meter under a hardware configuration (§IV).
func NewProfile(algorithm string, cfg Config, m *Meter) *Profile {
	return profile.New(algorithm, cfg, m)
}

// kNN searchers for direct use (the framework builds these internally).
type (
	// KNNSearcher is any kNN algorithm bound to a dataset.
	KNNSearcher = knn.Searcher
	// HDSearcher is a kNN algorithm over binary codes.
	HDSearcher = knn.HDSearcher
)

// NewExactKNN builds the exact ED linear scan baseline.
func NewExactKNN(data *Matrix) KNNSearcher { return knn.NewStandard(data) }

// NewHDExact builds the exact Hamming-scan baseline over binary codes.
func NewHDExact(codes []BitVector) HDSearcher { return knn.NewHDStandard(codes) }

// NewHDPIM builds the PIM-accelerated exact Hamming scan. capacityN is
// the full-scale code count for the capacity check.
func NewHDPIM(eng *Engine, codes []BitVector, capacityN int) (HDSearcher, error) {
	return knn.NewHDPIM(eng, codes, capacityN)
}

// SimHash returns bits-length random-hyperplane binary codes for every
// row of m (Charikar's LSH, used by the Hamming workloads).
func SimHash(m *Matrix, bits int, seed int64) []BitVector {
	return lsh.NewHasher(m.D, bits, seed).HashAll(m)
}

// k-means algorithms for direct use.
type KMeansAlgorithm = kmeans.Algorithm

// KMeansInitCenters picks k distinct rows as shared initial centers.
func KMeansInitCenters(data *Matrix, k int, seed int64) (*Matrix, error) {
	return kmeans.InitCenters(data, k, seed)
}

// KMeansInitPlusPlus picks k initial centers with k-means++ seeding
// (Arthur & Vassilvitskii), deterministic per seed.
func KMeansInitPlusPlus(data *Matrix, k int, seed int64) (*Matrix, error) {
	return kmeans.InitCentersPlusPlus(data, k, seed)
}

// NewLloyd builds the Standard (Lloyd) baseline.
func NewLloyd(data *Matrix) KMeansAlgorithm { return kmeans.NewLloyd(data) }

// ErrorBound returns Theorem 3's bound on the LB_PIM-ED quantization gap
// for d dimensions under quantizer q.
func ErrorBound(q Quantizer, d int) float64 { return q.ErrorBound(d) }

// ---------------------------------------------------------------------------
// Extension tasks: the other similarity-based mining workloads the
// paper's introduction names (outlier detection, motif discovery) plus
// similarity joins, each with a PIM-optimized variant.
// ---------------------------------------------------------------------------

// Outlier detection (Knorr–Ng DB outliers and top-n kNN-distance).
type (
	// OutlierDetector finds distance-based outliers.
	OutlierDetector = outlier.Detector
	// Outlier is one top-n kNN-distance result.
	Outlier = outlier.Outlier
)

// NewOutlierDetector builds the host-only detector.
func NewOutlierDetector(data *Matrix) *OutlierDetector { return outlier.NewDetector(data) }

// NewOutlierDetectorPIM builds the PIM-optimized detector.
func NewOutlierDetectorPIM(eng *Engine, data *Matrix, q Quantizer, capacityN int) (*OutlierDetector, error) {
	return outlier.NewDetectorPIM(eng, data, q, capacityN)
}

// Time-series motif discovery.
type (
	// MotifFinder locates the closest non-overlapping subsequence pair.
	MotifFinder = motif.Finder
	// Motif is one discovered pair.
	Motif = motif.Motif
)

// MotifWindows expands a series into normalized sliding windows.
func MotifWindows(series []float64, w int) (*Matrix, float64, error) {
	return motif.Windows(series, w)
}

// NewMotifFinder builds the host-only finder.
func NewMotifFinder(windows *Matrix) *MotifFinder { return motif.NewFinder(windows) }

// NewMotifFinderPIM builds the PIM-optimized finder.
func NewMotifFinderPIM(eng *Engine, windows *Matrix, q Quantizer, capacityN int) (*MotifFinder, error) {
	return motif.NewFinderPIM(eng, windows, q, capacityN)
}

// Density-based clustering (DBSCAN; §II-C names density-based
// clustering among the framework's target tasks).
type (
	// DBSCANClusterer runs DBSCAN with host or PIM range queries.
	DBSCANClusterer = dbscan.Clusterer
	// DBSCANResult is one clustering outcome.
	DBSCANResult = dbscan.Result
)

// NewDBSCAN builds the host-only clusterer.
func NewDBSCAN(data *Matrix) *DBSCANClusterer { return dbscan.New(data) }

// NewDBSCANPIM builds the PIM-optimized clusterer.
func NewDBSCANPIM(eng *Engine, data *Matrix, q Quantizer, capacityN int) (*DBSCANClusterer, error) {
	return dbscan.NewPIM(eng, data, q, capacityN)
}

// Similarity joins (kNN join and ε range join).
type (
	// Joiner joins an outer relation against a fixed inner relation.
	Joiner = join.Joiner
	// JoinPair is one ε-join result.
	JoinPair = join.Pair
)

// NewJoiner builds the host-only joiner over the inner relation.
func NewJoiner(s *Matrix) *Joiner { return join.NewJoiner(s) }

// NewJoinerPIM builds the PIM-optimized joiner.
func NewJoinerPIM(eng *Engine, s *Matrix, q Quantizer, capacityN int) (*Joiner, error) {
	return join.NewJoinerPIM(eng, s, q, capacityN)
}

// KNNClassifier turns any searcher into a majority-vote classifier.
type KNNClassifier = knn.Classifier

// NewKNNClassifier builds a classifier over a labeled dataset.
func NewKNNClassifier(s KNNSearcher, labels []int, k int) (*KNNClassifier, error) {
	return knn.NewClassifier(s, labels, k)
}

// DynamicKNN is the insert-capable PIM index (§VII future-work
// exploration): crossbar headroom is reserved up front, inserts program
// only fresh cells (endurance-free), and searches stay exact.
type DynamicKNN = knn.DynamicPIM

// NewDynamicKNN indexes initial rows and reserves headroom for
// reserveRows total rows.
func NewDynamicKNN(eng *Engine, initial *Matrix, q Quantizer, reserveRows int) (*DynamicKNN, error) {
	return knn.NewDynamicPIM(eng, initial, q, reserveRows)
}

// KNNBatchResult is the outcome of a concurrent batch search.
type KNNBatchResult = knn.BatchResult

// SearchKNNBatch answers a query matrix concurrently with per-worker
// searchers (see knn.SearchBatch).
func SearchKNNBatch(newSearcher func() (KNNSearcher, error), queries *Matrix, k, workers int) (*KNNBatchResult, error) {
	return knn.SearchBatch(newSearcher, queries, k, workers)
}

// The sharded concurrent query engine (internal/serve): the serving layer
// for sustained multi-tenant traffic. The dataset is partitioned row-wise
// across shards, each shard owns an independent (PIM-accelerated)
// searcher, and queries fan out and merge into the exact global top-k.
type (
	// QueryEngine serves concurrent kNN queries over a sharded dataset.
	QueryEngine = serve.Engine
	// QueryEngineOptions configures NewQueryEngine.
	QueryEngineOptions = serve.Options
	// QueryResult is one query's neighbors plus merged activity.
	QueryResult = serve.Result
	// QueryBatchResult is a batch submission's outcome.
	QueryBatchResult = serve.BatchResult
	// SearcherVariant names the per-shard searcher algorithm.
	SearcherVariant = serve.Variant
)

// The per-shard searcher variants accepted by QueryEngineOptions.Variant.
const (
	ServeStandard    = serve.VariantStandard
	ServeOST         = serve.VariantOST
	ServeSM          = serve.VariantSM
	ServeFNN         = serve.VariantFNN
	ServeStandardPIM = serve.VariantStandardPIM
	ServeOSTPIM      = serve.VariantOSTPIM
	ServeSMPIM       = serve.VariantSMPIM
	ServeFNNPIM      = serve.VariantFNNPIM
)

// SearcherVariants lists every supported per-shard variant.
func SearcherVariants() []SearcherVariant { return serve.Variants() }

// NewQueryEngine partitions data across shards and builds one searcher
// per shard. PIM variants need Options.Framework; a shard whose searcher
// construction fails degrades to the exact host scan and is reported by
// the engine (results stay exact).
func NewQueryEngine(data *Matrix, opts QueryEngineOptions) (*QueryEngine, error) {
	return serve.New(data, opts)
}

// Overload-resilient serving (internal/resilience): set
// QueryEngineOptions.Resilience (or MutableEngineOptions.Options
// .Resilience) to engage admission control, deadline-aware shedding,
// per-shard circuit breakers and a transient-fault retry budget. Only
// admission is lossy — a rejected or shed query is one of the typed
// errors below — and every admitted query still returns exact results.
type (
	// ResilienceConfig bundles the overload-protection knobs for one
	// serving engine; the zero value disables everything.
	ResilienceConfig = resilience.Config
	// CircuitBreakerConfig configures the per-shard breakers.
	CircuitBreakerConfig = resilience.BreakerConfig
	// RetryBudgetConfig configures the transient-fault retry budget.
	RetryBudgetConfig = resilience.RetryConfig
	// CircuitState is a breaker position (closed / open / half-open).
	CircuitState = resilience.State
)

// The typed rejection errors of the resilience pipeline. Match with
// errors.Is; the chains are pinned by resilience_facade_test.go.
var (
	// ErrOverloaded: rejected by admission control (concurrency cap and
	// wait queue both full).
	ErrOverloaded = resilience.ErrOverloaded
	// ErrShedDeadline: shed before dispatch — the remaining deadline was
	// below the observed p95 service time.
	ErrShedDeadline = resilience.ErrShedDeadline
	// ErrCircuitOpen: refused by an open circuit breaker. Engine queries
	// never surface it (an open shard breaker reroutes to the exact host
	// scan); it is exported for direct resilience.Breaker users.
	ErrCircuitOpen = resilience.ErrCircuitOpen
	// ErrQueryTimeout: the engine-applied QueryTimeout elapsed. It also
	// matches context.DeadlineExceeded, so pre-existing deadline checks
	// keep working; a caller-imposed deadline matches only the latter.
	ErrQueryTimeout = serve.ErrQueryTimeout
	// ErrEngineClosed: query issued after Close.
	ErrEngineClosed = serve.ErrClosed
	// ErrQuotaExceeded: refused by a tenant's token-bucket quota at the
	// network boundary (HTTP 429 with a refill-derived Retry-After).
	ErrQuotaExceeded = resilience.ErrQuotaExceeded
)

// DefaultResilience returns a production-shaped resilience config sized
// to a worker count (admission at the pool width, shedding at 1×p95,
// breakers after 8 consecutive fault-hit queries, 5% retry budget).
func DefaultResilience(workers int) ResilienceConfig { return resilience.Default(workers) }

// The network serving front-end (internal/netserve): an HTTP/1.1 +
// cleartext-HTTP/2 JSON server over a QueryEngine with per-tenant
// token-bucket quotas, weighted-fair queueing, a typed-sentinel →
// status-code wire contract (429 with Retry-After for ErrOverloaded /
// ErrShedDeadline / ErrQuotaExceeded, 504 for ErrQueryTimeout, 503 for
// ErrEngineClosed and drain), streaming NDJSON batch responses, and
// graceful drain. Wire results are byte-identical to direct facade
// calls (the differential suite in internal/netserve pins it).
type (
	// NetServer serves a QueryEngine over HTTP; it is an http.Handler
	// and NewHTTPServer wraps it for an h2c listener.
	NetServer = netserve.Server
	// NetServerOptions configures NewNetServer.
	NetServerOptions = netserve.Options
	// NetTenantConfig provisions one tenant's quota and fairness weight.
	NetTenantConfig = netserve.TenantConfig
)

// NewNetServer builds the HTTP front-end over opts.Engine. The server
// owns the engine's shutdown: NetServer.Drain completes in-flight
// requests, 503s new arrivals, and closes the engine.
func NewNetServer(opts NetServerOptions) (*NetServer, error) { return netserve.New(opts) }

// Mutable serving (internal/delta + internal/serve): the query engine
// with Insert/Update/Delete. Mutations land in a host-side delta buffer
// (exact floats) with tombstones masking replaced or deleted
// crossbar-resident rows; every query merges the bound-pruned base
// search with a brute-force delta scan, so results stay exact —
// byte-identical to a fresh engine over the equivalent final dataset. A
// compactor folds delta and tombstones back into freshly quantized base
// images, choosing crossbars by a per-tile write-cycle (endurance)
// ledger and re-running the Theorem 4 dimension split for the new
// occupancy.
type (
	// MutableEngine is the sharded mutable query engine.
	MutableEngine = serve.MutableEngine
	// MutableEngineOptions configures NewMutableEngine.
	MutableEngineOptions = serve.MutableOptions
	// DeltaStats reports one shard's delta/tombstone/compaction state.
	DeltaStats = delta.Stats
)

// ErrEndurance is returned by compaction when no crossbar has
// write-cycle budget left for a fresh image; the store keeps serving
// its current epoch exactly.
var ErrEndurance = delta.ErrEndurance

// NewMutableEngine builds a mutable query engine over data. Rows keep
// ids 0..N-1; Insert extends the id space monotonically. Queries run
// lock-free against mutations and background compaction via per-shard
// epoch snapshots.
func NewMutableEngine(data *Matrix, opts MutableEngineOptions) (*MutableEngine, error) {
	return serve.NewMutable(data, opts)
}

// Durable mutable serving (internal/wal + internal/serve): set
// MutableEngineOptions.Durability.Dir to make every mutation
// write-ahead logged (CRC-checked frames, fsync before apply under the
// default SyncAlways policy) with periodic snapshot checkpoints. After
// a crash, RecoverMutableEngine rebuilds the engine from the latest
// snapshot plus a strict log replay; the recovered engine's answers are
// bit-identical to the pre-crash engine's across every mining task, and
// it continues the id and shard-placement sequence exactly.
// MutableEngine.Checkpoint snapshots the current state and truncates
// the log so recovery cost stays bounded.
type (
	// DurabilityConfig configures the WAL + snapshot layer; the zero
	// value (empty Dir) disables durability.
	DurabilityConfig = serve.Durability
	// WALSyncPolicy chooses when appends fsync.
	WALSyncPolicy = wal.SyncPolicy
)

// The WAL fsync policies accepted by DurabilityConfig.Policy.
const (
	// WALSyncAlways fsyncs every record before it is applied (default).
	WALSyncAlways = wal.SyncAlways
	// WALSyncInterval fsyncs on a timer; a crash can lose the tail
	// since the last sync, but the surviving prefix replays exactly.
	WALSyncInterval = wal.SyncInterval
	// WALSyncNever leaves syncing to Close (and the OS).
	WALSyncNever = wal.SyncNever
)

// The typed durability errors. Match with errors.Is.
var (
	// ErrNotDurable: a durability operation (Checkpoint) on an engine
	// built without DurabilityConfig.Dir.
	ErrNotDurable = serve.ErrNotDurable
	// ErrDurableState: NewMutableEngine pointed at a directory that
	// already holds WAL/snapshot state — recover it instead of
	// silently shadowing it.
	ErrDurableState = serve.ErrDurableState
	// ErrNoDurableState: RecoverMutableEngine pointed at a directory
	// with nothing to recover.
	ErrNoDurableState = serve.ErrNoDurableState
)

// RecoverMutableEngine rebuilds a durable mutable engine from
// opts.Durability.Dir: latest snapshot, then strict WAL replay (a torn
// final frame from the crash is tolerated; any other corruption or LSN
// gap is a typed error). Shard count is restored from the snapshot.
func RecoverMutableEngine(opts MutableEngineOptions) (*MutableEngine, error) {
	return serve.RecoverMutable(opts)
}

// Standing queries (internal/standing): register a query once against a
// mutable engine and be notified as mutations change its answer. A kNN
// subscription delivers the initial view and then the full re-merged
// view after every mutation that changes it; a radius subscription
// fires once per future insert within the distance. Events arrive on a
// bounded channel — a slow consumer loses intermediate events (counted,
// and visible as sequence-number gaps), never stream integrity. The
// network front-end exposes subscriptions as streaming NDJSON on
// POST /v1/subscribe.
type (
	// StandingSubscription is one registered standing query.
	StandingSubscription = standing.Subscription
	// StandingEvent is one notification (init, update, or match).
	StandingEvent = standing.Event
	// StandingEventKind discriminates StandingEvent.
	StandingEventKind = standing.Kind
)

// The standing-query event kinds.
const (
	// StandingInit carries the subscription's initial kNN view.
	StandingInit = standing.KindInit
	// StandingUpdate carries a changed kNN view.
	StandingUpdate = standing.KindUpdate
	// StandingMatch reports an insert within a radius watch.
	StandingMatch = standing.KindMatch
)

// The typed standing-query errors. Match with errors.Is.
var (
	// ErrBadSubscription: invalid subscription parameters (dims, k,
	// radius).
	ErrBadSubscription = standing.ErrBadSubscription
	// ErrStandingClosed: subscribing against a closed engine.
	ErrStandingClosed = standing.ErrClosed
)

// Multi-node placement (internal/cluster): the serving engine's shards
// distributed over simulated PIM nodes by consistent hashing, each
// shard R-way replicated (default R=2) on distinct nodes. Because
// replicas apply identical mutation sequences, any current replica
// serves bit-identical answers — so a node kill, pause, partition or
// breaker-open fails over invisibly: the differential suite pins all
// six mining tasks byte-identical with any single node down. Repair
// (anti-entropy) re-ships PIMSNAP1 images to the least-worn nodes until
// replication is restored; ClusterChaos drives deterministic seeded
// failure schedules for testing.
type (
	// ClusterEngine is the multi-node placement engine. It serves the
	// same query, mutation and subscription surface as MutableEngine
	// and can front NetServerOptions.Cluster.
	ClusterEngine = cluster.Engine
	// ClusterOptions configures NewClusterEngine (nodes, replicas,
	// shards, placement seed, per-node breakers, link bandwidth).
	ClusterOptions = cluster.Options
	// ClusterNodeState describes one node for introspection.
	ClusterNodeState = cluster.NodeState
	// ClusterShipStats accounts snapshot shipping (count, bytes, and
	// modeled transfer time at ClusterOptions.LinkGBs).
	ClusterShipStats = cluster.ShipStats
	// ClusterChaos is the deterministic chaos harness: node kill,
	// restore+repair, pause, partition, slow — from a seeded schedule.
	ClusterChaos = cluster.Chaos
	// ClusterChaosConfig tunes the harness.
	ClusterChaosConfig = cluster.ChaosConfig
)

// The typed cluster degradation errors. Match with errors.Is.
var (
	// ErrNoQuorum: some shard has no live, reachable, current replica.
	ErrNoQuorum = cluster.ErrNoQuorum
	// ErrNodeDown: an admin operation addressed a dead node.
	ErrNodeDown = cluster.ErrNodeDown
	// ErrRebalancing: a shard's surviving replicas are stale (writes
	// landed while their nodes were unavailable); Repair restores them.
	ErrRebalancing = cluster.ErrRebalancing
)

// NewClusterEngine places data's shards onto opts.Nodes simulated PIM
// nodes with opts.Replicas-way replication and serves exact queries
// with transparent failover.
func NewClusterEngine(data *Matrix, opts ClusterOptions) (*ClusterEngine, error) {
	return cluster.New(data, opts)
}

// NewClusterChaos builds a seeded failure injector over a cluster
// engine; identical seeds over identical engines replay identical
// schedules.
func NewClusterChaos(eng *ClusterEngine, seed int64, cfg ClusterChaosConfig) *ClusterChaos {
	return cluster.NewChaos(eng, seed, cfg)
}

// Observability (internal/obs): a concurrency-safe metrics registry
// (atomic counters, gauges, fixed-bucket latency histograms with
// interpolated p50/p95/p99) plus head-sampled per-query span traces, with
// Prometheus text-format and expvar JSON exposition over net/http.
type (
	// Observer bundles a metrics registry and a tracer; pass one to
	// NewObservedEngine (or set QueryEngineOptions.Obs / Framework.Obs).
	Observer = obs.Observer
	// ObserverConfig configures NewObserver (sampling rate, buffers).
	ObserverConfig = obs.Config
	// MetricsRegistry registers counters/gauges/histograms and renders
	// Prometheus or expvar JSON exposition.
	MetricsRegistry = obs.Registry
	// QueryTrace is one sampled query's span tree, renderable as a text
	// flame view.
	QueryTrace = obs.Trace
)

// NewObserver builds an observability handle. SampleRate 1 traces every
// query, R traces one in R, 0 disables tracing (metrics stay on).
// Observer.Handler() serves /metrics, /debug/vars and /debug/traces.
func NewObserver(cfg ObserverConfig) *Observer { return obs.New(cfg) }

// NewObservedEngine is NewQueryEngine wired into an observer: query and
// per-shard counters, latency histograms, meter/fault collectors, and —
// for sampled queries — the full engine → shard → bound-eval → pim-dot →
// refine span tree.
func NewObservedEngine(data *Matrix, opts QueryEngineOptions, o *Observer) (*QueryEngine, error) {
	opts.Obs = o
	return serve.New(data, opts)
}

// Sketch-based shard routing (internal/route): a per-shard summary tier
// consulted before fan-out so a query only dispatches to shards that can
// contribute to its top-k. Exact mode prunes with admissible geometric
// lower bounds (results stay bit-identical to the unrouted engine);
// approximate mode ranks shards by SimHash similarity mass over a KMV
// row sample and visits a recall-targeted prefix. Attach a Router via
// QueryEngineOptions.Router (or MutableEngineOptions.Options.Router);
// the mutable engine keeps the summaries fresh through inserts and
// compaction automatically.
type (
	// Router scores shards for a query; build with NewRouter.
	Router = route.Router
	// RouterConfig configures NewRouter; the zero value means exact
	// default mode, 64-bit sketches, 32-row samples, Recall 0.95.
	RouterConfig = route.Config
	// RouteMode selects the routing strategy per query.
	RouteMode = route.Mode
	// RouteInfo annotates a routed QueryResult (visited/skipped shard
	// counts, estimated and audited recall).
	RouteInfo = serve.RouteInfo
)

// The per-query routing modes accepted by SearchMode and the wire's
// "mode" field.
const (
	// RouteAuto uses the router's configured default mode (and plain
	// full fan-out when no router is attached).
	RouteAuto = route.ModeAuto
	// RouteExact prunes only provably non-contributing shards.
	RouteExact = route.ModeExact
	// RouteApprox visits a recall-targeted prefix of shards.
	RouteApprox = route.ModeApprox
)

// The typed routing errors. Match with errors.Is.
var (
	// ErrRouterShardMismatch: the router was built for a different shard
	// count or dimensionality than the engine adopting it.
	ErrRouterShardMismatch = route.ErrShardMismatch
	// ErrNoRouter: an explicit routing mode was requested from an engine
	// with no router attached.
	ErrNoRouter = serve.ErrNoRouter
)

// ParseRouteMode validates a wire-format mode string ("", "exact",
// "approx").
func ParseRouteMode(s string) (RouteMode, error) { return route.ParseMode(s) }

// NewRouter builds a router whose per-shard summaries cover data
// partitioned the way NewQueryEngine/NewMutableEngine partition it
// (contiguous row ranges, remainder spread over the leading shards).
func NewRouter(cfg RouterConfig, data *Matrix, shards int) (*Router, error) {
	return route.NewEven(cfg, data, shards)
}

// NewShardRouter builds a router over an explicit shard partition.
func NewShardRouter(cfg RouterConfig, shards []*Matrix) (*Router, error) {
	return route.New(cfg, shards)
}

// HammingDistance is the exact HD between two codes.
func HammingDistance(a, b BitVector) int { return measure.Hamming(a, b) }

// SqEuclidean is the paper's (squared) ED similarity measure.
func SqEuclidean(p, q []float64) float64 { return measure.SqEuclidean(p, q) }

// Compile-time checks that the PIM searchers satisfy the public
// interfaces.
var (
	_ KNNSearcher = (*knn.StandardPIM)(nil)
	_ KNNSearcher = (*knn.FNNPIM)(nil)
	_ HDSearcher  = (*knn.HDPIM)(nil)
)
