// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark drives the corresponding experiment runner
// (internal/exp), prints the paper-style table once, and reports the
// experiment's wall time; the tables themselves carry the modeled times
// the paper reports (see EXPERIMENTS.md for paper-vs-measured).
//
//	go test -bench=. -benchmem            # everything, scaled workloads
//	go test -bench=BenchmarkTable7 -full  # full k sweep (slow)
package pimmine_test

import (
	"flag"
	"fmt"
	"sync"
	"testing"

	"pimmine/internal/exp"
)

var fullFlag = flag.Bool("full", false, "run the expensive sweeps (Table 7 k up to 1024)")

// benchSuite builds one shared suite per bench binary run; datasets are
// cached inside, so successive benchmarks reuse them.
var (
	suiteOnce sync.Once
	suite     *exp.Suite
)

func benchSuite() *exp.Suite {
	suiteOnce.Do(func() {
		suite = exp.NewSuite()
		suite.ScaleN = 1500
		suite.Queries = 3
		suite.Full = *fullFlag
	})
	return suite
}

// printed dedupes table output across -benchtime iterations.
var printed sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	s := benchSuite()
	runner, ok := exp.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tbl, err := runner(s)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if _, dup := printed.LoadOrStore(id, true); !dup {
			fmt.Printf("\n%s\n", tbl.String())
		}
	}
}

// ---- §VI static tables ----

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }

// ---- §IV profiling figures ----

func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// ---- §VI-C kNN classification ----

func BenchmarkFig13Dataset(b *testing.B)   { runExperiment(b, "fig13a") }
func BenchmarkFig13Algorithm(b *testing.B) { runExperiment(b, "fig13b") }
func BenchmarkFig13K(b *testing.B)         { runExperiment(b, "fig13c") }
func BenchmarkFig13Distance(b *testing.B)  { runExperiment(b, "fig13d") }
func BenchmarkFig14(b *testing.B)          { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)          { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)          { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)          { runExperiment(b, "fig17") }

// ---- §VI-D k-means clustering ----

func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7") }
func BenchmarkFig18(b *testing.B)  { runExperiment(b, "fig18") }

// ---- Extension tasks (beyond the paper's evaluation) ----

func BenchmarkExtOutlier(b *testing.B) { runExperiment(b, "ext-outlier") }
func BenchmarkExtMotif(b *testing.B)   { runExperiment(b, "ext-motif") }
func BenchmarkExtJoin(b *testing.B)    { runExperiment(b, "ext-join") }
func BenchmarkExtApprox(b *testing.B)  { runExperiment(b, "ext-approx") }
func BenchmarkExtScale(b *testing.B)   { runExperiment(b, "ext-scale") }
func BenchmarkExtDBSCAN(b *testing.B)  { runExperiment(b, "ext-dbscan") }
func BenchmarkExtKernels(b *testing.B) { runExperiment(b, "ext-kernels") }
