package pimmine_test

import (
	"testing"

	"pimmine"
)

// The public facade supports the full documented user journey.
func TestFacadeUserJourney(t *testing.T) {
	prof, err := pimmine.DatasetByName("MSD")
	if err != nil {
		t.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 500, 42)
	queries := ds.Queries(3, 43)

	fw, err := pimmine.NewFramework(pimmine.DefaultConfig(), pimmine.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := fw.AccelerateKNN(ds.X, pimmine.KNNOptions{
		CapacityN: prof.FullN,
		K:         10,
		Pilot:     queries,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc.S != 105 {
		t.Fatalf("MSD Theorem 4 s = %d, want 105", acc.S)
	}
	exact := pimmine.NewExactKNN(ds.X)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		want := exact.Search(q, 10, pimmine.NewMeter())
		got := acc.Optimized.Search(q, 10, pimmine.NewMeter())
		for i := range want {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("facade search inexact at query %d pos %d", qi, i)
			}
		}
	}
}

func TestFacadeKMeans(t *testing.T) {
	prof, err := pimmine.DatasetByName("Year")
	if err != nil {
		t.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 400, 7)
	fw, err := pimmine.NewFramework(pimmine.DefaultConfig(), pimmine.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := fw.AccelerateKMeans(ds.X, pimmine.Yinyang, pimmine.KMeansOptions{K: 8, MaxIters: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	initial, err := pimmine.KMeansInitCenters(ds.X, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	lloyd := pimmine.NewLloyd(ds.X).Run(initial, 20, pimmine.NewMeter())
	got := acc.PIM.Run(initial, 20, pimmine.NewMeter())
	for i := range lloyd.Assign {
		if lloyd.Assign[i] != got.Assign[i] {
			t.Fatalf("facade k-means diverges from Lloyd at point %d", i)
		}
	}
}

func TestFacadeHamming(t *testing.T) {
	prof, _ := pimmine.DatasetByName("GIST")
	ds := pimmine.GenerateDataset(prof, 300, 5)
	codes := pimmine.SimHash(ds.X, 256, 6)
	eng, err := pimmine.NewEngine(pimmine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pimScan, err := pimmine.NewHDPIM(eng, codes, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	hostScan := pimmine.NewHDExact(codes)
	q := pimmine.SimHash(ds.Queries(1, 9), 256, 6)[0]
	want := hostScan.Search(q, 5, pimmine.NewMeter())
	got := pimScan.Search(q, 5, pimmine.NewMeter())
	for i := range want {
		if want[i].Dist != got[i].Dist {
			t.Fatalf("HD facade mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if pimmine.HammingDistance(codes[0], codes[0]) != 0 {
		t.Fatal("HD(x,x) != 0")
	}
}

func TestFacadeHelpers(t *testing.T) {
	if len(pimmine.DatasetProfiles()) != 8 {
		t.Fatalf("want 8 Table 6 profiles")
	}
	q, err := pimmine.NewQuantizer(pimmine.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if eb := pimmine.ErrorBound(q, 420); eb <= 0 {
		t.Fatalf("ErrorBound = %v", eb)
	}
	if pimmine.SqEuclidean([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Fatal("SqEuclidean wrong")
	}
	m := pimmine.NewMeter()
	m.C("ED").Ops = 42
	r := pimmine.NewProfile("x", pimmine.DefaultConfig(), m)
	if r.Bottleneck() != "ED" {
		t.Fatalf("profile bottleneck = %q", r.Bottleneck())
	}
}

// Full-stack check: with the simulated (bit-sliced crossbar) engine, the
// framework's accelerated searcher still returns exactly the linear
// scan's neighbors — the deepest end-to-end path in the repository.
func TestSimulatedEngineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulate mode is slow")
	}
	prof, _ := pimmine.DatasetByName("Year") // smallest d keeps tiles cheap
	ds := pimmine.GenerateDataset(prof, 120, 11)
	queries := ds.Queries(2, 12)
	fw, err := pimmine.NewSimulatedFramework(pimmine.DefaultConfig(), pimmine.DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := fw.AccelerateKNN(ds.X, pimmine.KNNOptions{K: 5, Pilot: queries})
	if err != nil {
		t.Fatal(err)
	}
	exact := pimmine.NewExactKNN(ds.X)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		want := exact.Search(q, 5, pimmine.NewMeter())
		got := acc.PIM.Search(q, 5, pimmine.NewMeter())
		for i := range want {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("simulated engine inexact at query %d pos %d", qi, i)
			}
		}
	}
}
