package pimmine_test

import (
	"context"
	"errors"
	"testing"

	"pimmine"
)

// The multi-node journey works end to end through the facade: placement
// over simulated nodes, bit-identical failover on a node kill,
// anti-entropy repair back to full replication, typed degradation
// errors, and a deterministic chaos schedule.
func TestFacadeCluster(t *testing.T) {
	prof, err := pimmine.DatasetByName("MSD")
	if err != nil {
		t.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 200, 29)
	ctx := context.Background()

	eng, err := pimmine.NewClusterEngine(ds.X, pimmine.ClusterOptions{
		Nodes: 4, Replicas: 2, Shards: 6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Baseline answers from a plain single-process engine.
	base, err := pimmine.NewQueryEngine(ds.X, pimmine.QueryEngineOptions{Shards: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	queries := ds.Queries(6, 31)
	check := func(stage string) {
		t.Helper()
		for i := 0; i < queries.N; i++ {
			q := queries.Row(i)
			want, err := base.Search(ctx, q, 7)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Search(ctx, q, 7)
			if err != nil {
				t.Fatalf("%s: cluster search: %v", stage, err)
			}
			if len(got.Neighbors) != len(want.Neighbors) {
				t.Fatalf("%s: neighbor count mismatch", stage)
			}
			for j := range got.Neighbors {
				if got.Neighbors[j] != want.Neighbors[j] {
					t.Fatalf("%s: query %d neighbor %d differs: %+v vs %+v",
						stage, i, j, got.Neighbors[j], want.Neighbors[j])
				}
			}
		}
	}
	check("healthy")

	if err := eng.KillNode(2); err != nil {
		t.Fatal(err)
	}
	check("one node down")
	if eng.NodesUp() != 3 {
		t.Fatalf("NodesUp = %d, want 3", eng.NodesUp())
	}

	if err := eng.RestoreNode(2); err != nil {
		t.Fatal(err)
	}
	ships, err := eng.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if ships == 0 {
		t.Fatal("repair shipped nothing after restoring a killed node")
	}
	if st := eng.ShipStats(); st.Ships != ships || st.Bytes == 0 || st.ModeledNs == 0 {
		t.Fatalf("ship stats inconsistent: %+v (ships=%d)", st, ships)
	}
	check("after repair")

	// Chaos schedules replay deterministically through the facade.
	mk := func() []string {
		e2, err := pimmine.NewClusterEngine(ds.X, pimmine.ClusterOptions{
			Nodes: 4, Replicas: 2, Shards: 6, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e2.Close()
		return pimmine.NewClusterChaos(e2, 11, pimmine.ClusterChaosConfig{}).Steps(30)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chaos schedules diverge at step %d: %q vs %q", i, a[i], b[i])
		}
	}

	// Typed degradation: killing a dead node's sibling ops stay typed.
	if err := eng.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := eng.PauseNode(1); !errors.Is(err, pimmine.ErrNodeDown) {
		t.Fatalf("pause of dead node: got %v, want ErrNodeDown", err)
	}
}
