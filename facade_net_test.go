package pimmine_test

import (
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"pimmine"
)

// TestFacadeNetServer exercises the network front-end purely through the
// root facade: build an engine, wrap it in a NetServer with a provisioned
// tenant, serve one query over the wire, exhaust the tenant's quota, and
// drain. Pins that the facade re-exports (NetServer, NetServerOptions,
// NetTenantConfig, ErrQuotaExceeded) stay wired to the real packages.
func TestFacadeNetServer(t *testing.T) {
	t.Parallel()
	prof, err := pimmine.DatasetByName("MSD")
	if err != nil {
		t.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 100, 5)
	eng, err := pimmine.NewQueryEngine(ds.X, pimmine.QueryEngineOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := pimmine.NewNetServer(pimmine.NetServerOptions{
		Engine:  eng,
		Tenants: []pimmine.NetTenantConfig{{Name: "paid", Weight: 2, Rate: 100, Burst: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	q := ds.Queries(1, 13).Row(0)
	body, err := json.Marshal(map[string]any{"tenant": "paid", "query": q, "k": 4})
	if err != nil {
		t.Fatal(err)
	}
	post := func() (int, string) {
		resp, err := ts.Client().Post(ts.URL+"/v1/search", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(data)
	}

	status, data := post()
	if status != 200 {
		t.Fatalf("first request: status %d: %s", status, data)
	}
	var qr struct {
		Neighbors []struct {
			Index int     `json:"index"`
			Dist  float64 `json:"dist"`
		} `json:"neighbors"`
	}
	if err := json.Unmarshal([]byte(data), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Neighbors) != 4 {
		t.Fatalf("got %d neighbors, want 4", len(qr.Neighbors))
	}

	// Burst 1 is spent; the second request trips the facade-exported
	// quota sentinel, rendered as 429 quota_exceeded on the wire.
	status, data = post()
	if status != 429 || !strings.Contains(data, "quota_exceeded") {
		t.Fatalf("over-quota: status %d body %s", status, data)
	}
	if !errors.Is(pimmine.ErrQuotaExceeded, pimmine.ErrQuotaExceeded) {
		t.Fatal("ErrQuotaExceeded must be a stable sentinel")
	}

	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(t.Context(), q, 4); !errors.Is(err, pimmine.ErrEngineClosed) {
		t.Fatalf("post-drain engine err = %v, want ErrEngineClosed", err)
	}
}
