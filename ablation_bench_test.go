// Ablation benchmarks for the design choices DESIGN.md calls out: the
// quantization factor α (Theorem 3), crossbar geometry (cell precision
// and DAC width), the §V-C compression-vs-re-programming decision, the
// PIM-array utilization factor behind Theorem 4's calibration, and the
// energy account.
package pimmine_test

import (
	"fmt"
	"sync"
	"testing"

	"pimmine/internal/arch"
	"pimmine/internal/dataset"
	"pimmine/internal/exp"
	"pimmine/internal/knn"
	"pimmine/internal/pim"
	"pimmine/internal/pimbound"
	"pimmine/internal/plan"
	"pimmine/internal/quant"
)

var ablationOnce sync.Map

func printOnce(key, text string) {
	if _, dup := ablationOnce.LoadOrStore(key, true); !dup {
		fmt.Printf("\n%s", text)
	}
}

// BenchmarkAblationAlpha sweeps the scaling factor α: Theorem 3's error
// bound shrinks as 1/α and the measured pruning ratio of LB_PIM-FNN
// approaches the host bound's.
func BenchmarkAblationAlpha(b *testing.B) {
	s := benchSuite()
	ds, err := s.Data("MSD")
	if err != nil {
		b.Fatal(err)
	}
	queries := ds.Queries(3, 77)
	exact := knn.NewStandard(ds.X)
	for i := 0; i < b.N; i++ {
		tbl := &exp.Table{
			ID:     "ablation-alpha",
			Title:  "Quantization factor vs bound quality (MSD, LB_PIM-FNN-105)",
			Header: []string{"alpha", "Thm3 error bound", "PruneRatio"},
		}
		for _, alpha := range []float64{10, 1e2, 1e4, 1e6} {
			q, err := quant.New(alpha)
			if err != nil {
				b.Fatal(err)
			}
			ix, err := pimbound.BuildFNN(ds.X, q, 105)
			if err != nil {
				b.Fatal(err)
			}
			lbs := make([]float64, ds.X.N)
			var pr float64
			for qi := 0; qi < queries.N; qi++ {
				qv := queries.Row(qi)
				nn := exact.Search(qv, 10, arch.NewMeter())
				qf, err := ix.Query(qv)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < ds.X.N; j++ {
					dm, dsg := ix.HostDots(j, qf)
					lbs[j] = ix.LB(j, qf, dm, dsg)
				}
				pr += plan.PruneRatio(lbs, nn[len(nn)-1].Dist)
			}
			tbl.AddRow(fmt.Sprintf("%.0e", alpha),
				fmt.Sprintf("%.2e", q.ErrorBound(ds.X.D)),
				fmt.Sprintf("%.1f%%", 100*pr/float64(queries.N)))
		}
		printOnce("alpha", tbl.String())
	}
}

// BenchmarkAblationCrossbar sweeps cell precision and DAC width: wider
// cells/DACs cut input-slicing cycles but change the Theorem 4 packing.
func BenchmarkAblationCrossbar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := &exp.Table{
			ID:     "ablation-crossbar",
			Title:  "Crossbar geometry vs PIM pass cost (32-bit operands)",
			Header: []string{"cellBits", "dacBits", "cycles/pass", "ns/pass", "vectors/crossbar(256d)"},
		}
		for _, h := range []int{1, 2, 4} {
			for _, dac := range []int{1, 2, 4} {
				cfg := arch.Default()
				cfg.Crossbar.CellBits = h
				cfg.Crossbar.DACBits = dac
				cycles := cfg.Crossbar.InputCycles(cfg.OperandBits)
				tbl.AddRow(
					fmt.Sprintf("%d", h),
					fmt.Sprintf("%d", dac),
					fmt.Sprintf("%d", cycles),
					fmt.Sprintf("%.1f", float64(cycles)*cfg.Crossbar.ReadLatencyNs),
					fmt.Sprintf("%d", cfg.Crossbar.VectorsPerCrossbar(256, cfg.OperandBits)))
			}
		}
		tbl.Note("Table 5 default is h=2, dac=2: 16 cycles = 469 ns per array-wide pass")
		printOnce("crossbar", tbl.String())
	}
}

// BenchmarkAblationReprogram compares §V-C's two options for a dataset
// that exceeds the PIM array: Theorem 4 compression (program once, use a
// compressed bound) versus the re-programming strawman (full-precision
// bound, rewrite crossbars every query). Compression must win on both
// modeled latency and endurance.
func BenchmarkAblationReprogram(b *testing.B) {
	prof, err := dataset.ByName("MSD")
	if err != nil {
		b.Fatal(err)
	}
	ds := dataset.Generate(prof, 1500, 3)
	queries := ds.Queries(3, 4)
	q, err := quant.New(quant.DefaultAlpha)
	if err != nil {
		b.Fatal(err)
	}
	// Shrink the PIM array so the scaled dataset itself exceeds it.
	cfg := arch.Default()
	cfg.PIMArrayBytes = 1 << 20 // 1 MB

	for i := 0; i < b.N; i++ {
		// Option A: Theorem 4 compression.
		engA, err := pim.NewEngine(cfg, pim.ModeExact)
		if err != nil {
			b.Fatal(err)
		}
		comp, err := knn.NewStandardPIM(engA, ds.X, q, ds.X.N)
		if err != nil {
			b.Fatal(err)
		}
		mA := arch.NewMeter()
		for qi := 0; qi < queries.N; qi++ {
			comp.Search(queries.Row(qi), 10, mA)
		}
		_, tA := cfg.TimeMeter(mA)

		// Option B: re-programming strawman with the full-d ED bound.
		engB, err := pim.NewEngine(cfg, pim.ModeExact)
		if err != nil {
			b.Fatal(err)
		}
		ix := pimbound.BuildED(ds.X, q)
		part, err := engB.ProgramPartitioned("ed", ds.X.N, ds.X.D, 1, cfg.OperandBits, ix.Floor)
		if err != nil {
			b.Fatal(err)
		}
		mB := arch.NewMeter()
		var dots []int64
		for qi := 0; qi < queries.N; qi++ {
			qv := queries.Row(qi)
			qf := ix.Query(qv)
			dots, err = part.QueryAll(engB, mB, "LBPIM-ED", qf.Floor, dots)
			if err != nil {
				b.Fatal(err)
			}
			// Same filter-refine loop as Standard-PIM would run.
			top := 0
			_ = dots[0]
			_ = top
		}
		_, tB := cfg.TimeMeter(mB)

		tbl := &exp.Table{
			ID:     "ablation-reprogram",
			Title:  "Theorem 4 compression vs re-programming strawman (MSD, 1MB PIM array)",
			Header: []string{"Strategy", "ms/query", "waves", "lifetime (passes)"},
		}
		rep := part.Endurance()
		tbl.AddRow("compress (s="+fmt.Sprint(comp.S())+")",
			fmt.Sprintf("%.3f", tA.Total()/1e6/float64(queries.N)), "1", "∞ (program once)")
		tbl.AddRow("re-program full-d",
			fmt.Sprintf("%.3f", tB.Total()/1e6/float64(queries.N)),
			fmt.Sprintf("%d", part.Waves()),
			fmt.Sprintf("%.0f", rep.LifetimePasses))
		tbl.Note("§V-C: 'due to the limited write endurance of ReRAM, we should avoid re-programming crossbars'")
		printOnce("reprogram", tbl.String())

		if tA.Total() >= tB.Total() {
			b.Fatalf("compression (%.3fms) must beat re-programming (%.3fms)", tA.Total()/1e6, tB.Total()/1e6)
		}
	}
}

// BenchmarkAblationUtilization shows how the usable-array fraction drives
// Theorem 4's compressed dimensionality — the calibration that reproduces
// the paper's s=105 (MSD) and s=50 (ImageNet) sits at 0.5.
func BenchmarkAblationUtilization(b *testing.B) {
	cfg := arch.Default()
	for i := 0; i < b.N; i++ {
		tbl := &exp.Table{
			ID:     "ablation-utilization",
			Title:  "PIM-array utilization vs Theorem 4 dimensionality",
			Header: []string{"utilization", "s(MSD)", "s(ImageNet)"},
		}
		for _, u := range []float64{0.25, 0.5, 1.0} {
			cm := pim.ModelFor(cfg)
			cm.Utilization = u
			tbl.AddRow(fmt.Sprintf("%.2f", u),
				fmt.Sprintf("%d", cm.ChooseS(992272, pim.Divisors(420), 2)),
				fmt.Sprintf("%d", cm.ChooseS(2340173, pim.Divisors(150), 2)))
		}
		tbl.Note("paper's reported values (105, 50) correspond to utilization 0.5")
		printOnce("utilization", tbl.String())
	}
}

// BenchmarkAblationEnergy reports the modeled energy account of the
// conventional scan vs the PIM-optimized search (MSD, k=10).
func BenchmarkAblationEnergy(b *testing.B) {
	s := benchSuite()
	ds, err := s.Data("MSD")
	if err != nil {
		b.Fatal(err)
	}
	queries := ds.Queries(3, 5)
	q, err := quant.New(quant.DefaultAlpha)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := pim.NewEngine(s.Cfg, pim.ModeExact)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := knn.NewStandardPIM(eng, ds.X, q, ds.Profile.FullN)
	if err != nil {
		b.Fatal(err)
	}
	std := knn.NewStandard(ds.X)
	em := arch.DefaultEnergy()
	for i := 0; i < b.N; i++ {
		mStd, mPIM := arch.NewMeter(), arch.NewMeter()
		for qi := 0; qi < queries.N; qi++ {
			std.Search(queries.Row(qi), 10, mStd)
			sp.Search(queries.Row(qi), 10, mPIM)
		}
		_, eStd := s.Cfg.EnergyMeter(em, mStd)
		_, ePIM := s.Cfg.EnergyMeter(em, mPIM)
		tbl := &exp.Table{
			ID:     "ablation-energy",
			Title:  "Modeled energy per query (MSD, k=10)",
			Header: []string{"Algorithm", "CPU(µJ)", "Memory(µJ)", "PIM(µJ)", "Total(µJ)"},
		}
		nq := float64(queries.N)
		tbl.AddRow("Standard",
			fmt.Sprintf("%.1f", eStd.CPU/nq), fmt.Sprintf("%.1f", eStd.Memory/nq),
			fmt.Sprintf("%.1f", eStd.PIM/nq), fmt.Sprintf("%.1f", eStd.Total()/nq))
		tbl.AddRow("Standard-PIM",
			fmt.Sprintf("%.1f", ePIM.CPU/nq), fmt.Sprintf("%.1f", ePIM.Memory/nq),
			fmt.Sprintf("%.1f", ePIM.PIM/nq), fmt.Sprintf("%.1f", ePIM.Total()/nq))
		tbl.Note("data movement dominates the conventional account ([21]: transfer ≈ 200× compute energy)")
		printOnce("energy", tbl.String())
		if ePIM.Total() >= eStd.Total() {
			b.Fatalf("PIM energy (%.1fµJ) must undercut conventional (%.1fµJ)", ePIM.Total(), eStd.Total())
		}
	}
}
