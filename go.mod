module pimmine

go 1.22
