package pimmine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"pimmine"
)

// The durability and standing-query journey works end to end through
// the facade: WAL-backed mutations, crash recovery that reproduces the
// pre-crash engine bit for bit, checkpointing, the typed directory
// discipline, and a live subscription.
func TestFacadeDurable(t *testing.T) {
	prof, err := pimmine.DatasetByName("MSD")
	if err != nil {
		t.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 120, 23)
	dir := t.TempDir()
	opts := pimmine.MutableEngineOptions{
		Options:    pimmine.QueryEngineOptions{Shards: 3, Workers: 2},
		MaxDelta:   1 << 20,
		Durability: pimmine.DurabilityConfig{Dir: dir, Policy: pimmine.WALSyncAlways},
	}
	eng, err := pimmine.NewMutableEngine(ds.X, opts)
	if err != nil {
		t.Fatal(err)
	}

	// A standing kNN query sees its initial view, then the update an
	// insert of the query vector itself must cause.
	q := ds.Queries(1, 41).Row(0)
	sub, err := eng.SubscribeKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	waitEvent := func(want pimmine.StandingEventKind) pimmine.StandingEvent {
		t.Helper()
		select {
		case ev := <-sub.Events():
			if ev.Kind != want {
				t.Fatalf("event kind = %v, want %v", ev.Kind, want)
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("no %v event", want)
		}
		panic("unreachable")
	}
	waitEvent(pimmine.StandingInit)
	id, err := eng.Insert(q)
	if err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(pimmine.StandingUpdate); ev.Trigger != id || ev.Dist != 0 {
		t.Fatalf("update event = %+v, want trigger %d at distance 0", ev, id)
	}
	if err := eng.Delete(7); err != nil {
		t.Fatal(err)
	}
	eng.Unsubscribe(sub.ID())

	want, err := eng.Search(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}

	// Crash: abandon eng without Close. Every mutation was fsynced
	// before being applied, so recovery must reproduce it exactly.
	rec, err := pimmine.RecoverMutableEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got, err := rec.Search(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Neighbors {
		if want.Neighbors[i] != got.Neighbors[i] {
			t.Fatalf("recovered answer differs at rank %d: got %+v want %+v",
				i, got.Neighbors[i], want.Neighbors[i])
		}
	}
	if err := rec.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Directory discipline.
	if _, err := pimmine.NewMutableEngine(ds.X, opts); !errors.Is(err, pimmine.ErrDurableState) {
		t.Fatalf("NewMutableEngine over live state = %v, want ErrDurableState", err)
	}
	empty := opts
	empty.Durability.Dir = t.TempDir()
	if _, err := pimmine.RecoverMutableEngine(empty); !errors.Is(err, pimmine.ErrNoDurableState) {
		t.Fatalf("recover from empty dir = %v, want ErrNoDurableState", err)
	}
	plain, err := pimmine.NewMutableEngine(ds.X, pimmine.MutableEngineOptions{
		Options: pimmine.QueryEngineOptions{Shards: 2, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.Checkpoint(); !errors.Is(err, pimmine.ErrNotDurable) {
		t.Fatalf("Checkpoint on non-durable engine = %v, want ErrNotDurable", err)
	}
	if _, err := plain.SubscribeKNN(q[:2], 3); !errors.Is(err, pimmine.ErrBadSubscription) {
		t.Fatalf("bad subscription = %v, want ErrBadSubscription", err)
	}
}
