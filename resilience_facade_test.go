package pimmine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"pimmine"
)

// gatedSearcher blocks each search on a gate channel (signalling entry
// once), so tests can hold an admission slot in flight deterministically.
type gatedSearcher struct {
	inner   pimmine.KNNSearcher
	gate    chan struct{}
	entered chan struct{}
}

func (s *gatedSearcher) Name() string { return "gated" }

func (s *gatedSearcher) Search(q []float64, k int, m *pimmine.Meter) []pimmine.Neighbor {
	select {
	case s.entered <- struct{}{}:
	default:
	}
	<-s.gate
	return s.inner.Search(q, k, m)
}

// TestResilienceErrorChains pins every errors.Is chain the facade
// promises for the overload-protection pipeline, end to end through a
// real engine wherever the error can be provoked deterministically:
//
//	admission rejection  → ErrOverloaded
//	deadline shed        → ErrShedDeadline
//	engine QueryTimeout  → ErrQueryTimeout AND context.DeadlineExceeded
//	caller deadline      → context.DeadlineExceeded only
//	query after Close    → ErrEngineClosed
func TestResilienceErrorChains(t *testing.T) {
	t.Parallel()
	prof, err := pimmine.DatasetByName("MSD")
	if err != nil {
		t.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 80, 7)
	queries := ds.Queries(2, 8)

	// Engine QueryTimeout vs caller deadline: both are deadline errors,
	// only the engine's carries ErrQueryTimeout. A 1ns engine timeout
	// fires before any work on every platform.
	e, err := pimmine.NewQueryEngine(ds.X, pimmine.QueryEngineOptions{
		Shards:       2,
		QueryTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond) // let the 1ns deadline definitely pass
	_, qerr := e.Search(context.Background(), queries.Row(0), 3)
	if !errors.Is(qerr, pimmine.ErrQueryTimeout) {
		t.Fatalf("engine timeout: got %v, want ErrQueryTimeout", qerr)
	}
	if !errors.Is(qerr, context.DeadlineExceeded) {
		t.Fatalf("ErrQueryTimeout must match context.DeadlineExceeded, got %v", qerr)
	}

	plain, err := pimmine.NewQueryEngine(ds.X, pimmine.QueryEngineOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, cerr := plain.Search(expired, queries.Row(0), 3)
	if !errors.Is(cerr, context.DeadlineExceeded) {
		t.Fatalf("caller deadline: got %v", cerr)
	}
	if errors.Is(cerr, pimmine.ErrQueryTimeout) {
		t.Fatal("caller deadline must not match ErrQueryTimeout")
	}

	// Deadline shed: warm the shedder, then offer a doomed deadline.
	cfg := pimmine.ResilienceConfig{ShedFactor: 1, MinShedSamples: 2}
	shedEng, err := pimmine.NewQueryEngine(ds.X, pimmine.QueryEngineOptions{
		Shards:     2,
		Resilience: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := shedEng.Search(context.Background(), queries.Row(0), 3); err != nil {
			t.Fatalf("warm-up %d: %v", i, err)
		}
	}
	doomed, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	_, serr := shedEng.Search(doomed, queries.Row(1), 3)
	if !errors.Is(serr, pimmine.ErrShedDeadline) {
		t.Fatalf("doomed deadline: got %v, want ErrShedDeadline", serr)
	}
	if errors.Is(serr, pimmine.ErrOverloaded) || errors.Is(serr, pimmine.ErrQueryTimeout) {
		t.Fatalf("shed error matched a sibling sentinel: %v", serr)
	}

	// Admission rejection: a gated shard searcher holds the single slot
	// in flight (deterministically — the holder signals entry) while a
	// second query is refused.
	lcfg := pimmine.ResilienceConfig{MaxConcurrent: 1}
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	limEng, err := pimmine.NewQueryEngine(ds.X, pimmine.QueryEngineOptions{
		Shards: 1,
		Factory: func(m *pimmine.Matrix, _ int) (pimmine.KNNSearcher, error) {
			return &gatedSearcher{inner: pimmine.NewExactKNN(m), gate: gate, entered: entered}, nil
		},
		Resilience: &lcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := limEng.Search(context.Background(), queries.Row(0), 3)
		done <- err
	}()
	<-entered // the holder is inside the shard searcher: slot held
	_, oerr := limEng.Search(context.Background(), queries.Row(1), 3)
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("slot-holding query failed: %v", err)
	}
	if !errors.Is(oerr, pimmine.ErrOverloaded) {
		t.Fatalf("saturated engine: got %v, want ErrOverloaded", oerr)
	}
	if errors.Is(oerr, pimmine.ErrShedDeadline) || errors.Is(oerr, pimmine.ErrCircuitOpen) {
		t.Fatalf("overload error matched a sibling sentinel: %v", oerr)
	}

	// Closed engine.
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Search(context.Background(), queries.Row(0), 3); !errors.Is(err, pimmine.ErrEngineClosed) {
		t.Fatalf("closed engine: got %v, want ErrEngineClosed", err)
	}

	// The sentinels are pairwise distinct.
	sentinels := []error{
		pimmine.ErrOverloaded, pimmine.ErrShedDeadline,
		pimmine.ErrCircuitOpen, pimmine.ErrQueryTimeout, pimmine.ErrEngineClosed,
	}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Fatalf("sentinel %d matches sentinel %d", i, j)
			}
		}
	}
}

// TestDefaultResilienceServes smoke-tests a fully-enabled default config
// through the facade: normal traffic is unaffected.
func TestDefaultResilienceServes(t *testing.T) {
	t.Parallel()
	prof, err := pimmine.DatasetByName("MSD")
	if err != nil {
		t.Fatal(err)
	}
	ds := pimmine.GenerateDataset(prof, 120, 9)
	queries := ds.Queries(4, 10)
	cfg := pimmine.DefaultResilience(4)
	e, err := pimmine.NewQueryEngine(ds.X, pimmine.QueryEngineOptions{
		Shards:     2,
		Workers:    4,
		Resilience: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := pimmine.NewExactKNN(ds.X)
	for qi := 0; qi < queries.N; qi++ {
		res, err := e.Search(context.Background(), queries.Row(qi), 5)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := exact.Search(queries.Row(qi), 5, pimmine.NewMeter())
		for i := range want {
			if res.Neighbors[i] != want[i] {
				t.Fatalf("query %d inexact under default resilience", qi)
			}
		}
	}
	batch, err := e.SearchBatch(context.Background(), queries, 5)
	if err != nil {
		t.Fatalf("batch under default resilience: %v", err)
	}
	if len(batch.Results) != queries.N {
		t.Fatalf("batch returned %d results for %d queries", len(batch.Results), queries.N)
	}
}
